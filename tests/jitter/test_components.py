"""Tests for the jitter component models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.jitter import (
    BoundedUniformJitter,
    CompositeJitter,
    DutyCycleDistortion,
    NoJitter,
    PeriodicJitter,
    RandomJitter,
)


def edge_grid(n=1000, ui=156.25e-12):
    times = ui * np.arange(n)
    rising = (np.arange(n) % 2) == 0
    return times, rising


class TestRandomJitter:
    def test_sigma_statistics(self, rng):
        times, rising = edge_grid(20000)
        offsets = RandomJitter(2e-12).offsets(times, rising, rng)
        assert offsets.std() == pytest.approx(2e-12, rel=0.05)
        assert abs(offsets.mean()) < 0.1e-12

    def test_zero_sigma_is_exactly_zero(self, rng):
        times, rising = edge_grid(100)
        offsets = RandomJitter(0.0).offsets(times, rising, rng)
        assert np.all(offsets == 0.0)

    def test_unbounded(self):
        assert RandomJitter(1e-12).peak_to_peak_bound() == math.inf

    def test_zero_sigma_bounded(self):
        assert RandomJitter(0.0).peak_to_peak_bound() == 0.0

    def test_rejects_negative_sigma(self):
        with pytest.raises(ReproError):
            RandomJitter(-1e-12)


class TestPeriodicJitter:
    def test_amplitude_bound_respected(self, rng):
        times, rising = edge_grid(5000)
        pj = PeriodicJitter(amplitude=3e-12, frequency=10e6)
        offsets = pj.offsets(times, rising, rng)
        assert np.abs(offsets).max() <= 3e-12 + 1e-18

    def test_deterministic(self, rng):
        times, rising = edge_grid(100)
        pj = PeriodicJitter(2e-12, 1e6, phase=0.3)
        a = pj.offsets(times, rising, np.random.default_rng(0))
        b = pj.offsets(times, rising, np.random.default_rng(99))
        np.testing.assert_array_equal(a, b)

    def test_phase_zero_starts_at_zero(self, rng):
        times = np.array([0.0])
        pj = PeriodicJitter(2e-12, 1e6)
        assert pj.offsets(times, np.array([True]), rng)[0] == pytest.approx(
            0.0
        )

    def test_peak_to_peak_bound(self):
        assert PeriodicJitter(3e-12, 1e6).peak_to_peak_bound() == 6e-12

    def test_rejects_bad_frequency(self):
        with pytest.raises(ReproError):
            PeriodicJitter(1e-12, 0.0)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ReproError):
            PeriodicJitter(-1e-12, 1e6)


class TestDcd:
    def test_splits_by_polarity(self, rng):
        times, rising = edge_grid(10)
        offsets = DutyCycleDistortion(4e-12).offsets(times, rising, rng)
        assert np.all(offsets[rising] == 2e-12)
        assert np.all(offsets[~rising] == -2e-12)

    def test_peak_to_peak_is_magnitude(self):
        assert DutyCycleDistortion(4e-12).peak_to_peak_bound() == 4e-12

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            DutyCycleDistortion(-1e-12)


class TestBoundedUniform:
    def test_bounds_respected(self, rng):
        times, rising = edge_grid(10000)
        offsets = BoundedUniformJitter(3e-12).offsets(times, rising, rng)
        assert np.abs(offsets).max() <= 3e-12

    def test_roughly_uniform(self, rng):
        times, rising = edge_grid(20000)
        offsets = BoundedUniformJitter(3e-12).offsets(times, rising, rng)
        # Uniform on [-a, a] has std a/sqrt(3).
        assert offsets.std() == pytest.approx(3e-12 / np.sqrt(3), rel=0.05)

    def test_zero_range(self, rng):
        times, rising = edge_grid(10)
        offsets = BoundedUniformJitter(0.0).offsets(times, rising, rng)
        assert np.all(offsets == 0.0)

    def test_peak_to_peak_bound(self):
        assert BoundedUniformJitter(3e-12).peak_to_peak_bound() == 6e-12


class TestNoJitter:
    def test_zero_offsets(self, rng):
        times, rising = edge_grid(10)
        assert np.all(NoJitter().offsets(times, rising, rng) == 0.0)

    def test_zero_bound(self):
        assert NoJitter().peak_to_peak_bound() == 0.0


class TestComposite:
    def test_sum_of_components(self, rng):
        times, rising = edge_grid(100)
        dcd = DutyCycleDistortion(4e-12)
        pj = PeriodicJitter(2e-12, 1e6)
        combined = CompositeJitter(dcd, pj)
        total = combined.offsets(times, rising, np.random.default_rng(1))
        expected = dcd.offsets(
            times, rising, np.random.default_rng(1)
        ) + pj.offsets(times, rising, np.random.default_rng(1))
        np.testing.assert_allclose(total, expected)

    def test_bound_sums(self):
        combined = CompositeJitter(
            DutyCycleDistortion(4e-12), PeriodicJitter(2e-12, 1e6)
        )
        assert combined.peak_to_peak_bound() == pytest.approx(8e-12)

    def test_bound_infinite_with_rj(self):
        combined = CompositeJitter(RandomJitter(1e-12), NoJitter())
        assert combined.peak_to_peak_bound() == math.inf

    def test_empty_composite_is_zero(self, rng):
        times, rising = edge_grid(5)
        assert np.all(
            CompositeJitter().offsets(times, rising, rng) == 0.0
        )

    def test_rejects_non_component(self):
        with pytest.raises(ReproError):
            CompositeJitter("not a component")

    @given(
        st.floats(min_value=0, max_value=5e-12),
        st.floats(min_value=0, max_value=5e-12),
    )
    @settings(max_examples=30, deadline=None)
    def test_bound_additivity_property(self, dcd_mag, pj_amp):
        components = []
        if dcd_mag:
            components.append(DutyCycleDistortion(dcd_mag))
        if pj_amp:
            components.append(PeriodicJitter(pj_amp, 1e6))
        combined = CompositeJitter(*components)
        expected = sum(c.peak_to_peak_bound() for c in components)
        assert combined.peak_to_peak_bound() == pytest.approx(expected)
