"""Tests for dual-Dirac decomposition and TJ(BER) extrapolation."""

import numpy as np
import pytest

from repro.errors import InsufficientEdgesError, MeasurementError
from repro.jitter import DualDiracModel, fit_dual_dirac, q_ber, total_jitter_at_ber


class TestQBer:
    def test_known_value_1e12(self):
        # Q(1e-12) is approximately 7.03.
        assert q_ber(1e-12) == pytest.approx(7.03, abs=0.01)

    def test_known_value_1e3(self):
        assert q_ber(1e-3) == pytest.approx(3.09, abs=0.01)

    def test_monotone_in_ber(self):
        assert q_ber(1e-15) > q_ber(1e-12) > q_ber(1e-6)

    @pytest.mark.parametrize("bad", [0.0, 0.5, 1.0, -0.1])
    def test_rejects_bad_ber(self, bad):
        with pytest.raises(MeasurementError):
            q_ber(bad)


class TestFitDualDirac:
    def test_pure_gaussian(self, rng):
        tie = rng.normal(0.0, 2e-12, size=50000)
        model = fit_dual_dirac(tie)
        assert model.rj_sigma == pytest.approx(2e-12, rel=0.1)
        assert model.dj_pp < 1e-12

    def test_pure_dcd(self, rng):
        # Two Diracs at +-3 ps plus a whisker of Gaussian noise.
        half = rng.normal(0.0, 0.2e-12, size=25000)
        tie = np.concatenate([half - 3e-12, half + 3e-12])
        model = fit_dual_dirac(tie)
        assert model.dj_pp == pytest.approx(6e-12, rel=0.15)
        assert model.rj_sigma == pytest.approx(0.2e-12, rel=0.3)

    def test_mixed(self, rng):
        # DJ(dd) is *defined* by the tail fit and classically
        # under-reports the true Dirac separation when RJ is comparable
        # (each tail sees only half the population, which the Gaussian
        # fit absorbs as a mu offset).  For sigma=1 ps and true
        # separation 4 ps the dual-Dirac value lands near 2.8 ps.
        rj = rng.normal(0.0, 1e-12, size=50000)
        dj = np.where(rng.random(50000) > 0.5, 2e-12, -2e-12)
        model = fit_dual_dirac(rj + dj)
        assert 2.0e-12 <= model.dj_pp <= 4.2e-12
        assert model.rj_sigma == pytest.approx(1.1e-12, rel=0.2)

    def test_mu_ordering(self, rng):
        tie = rng.normal(0.0, 1e-12, size=5000)
        model = fit_dual_dirac(tie)
        assert model.mu_right >= model.mu_left

    def test_too_few_edges(self):
        with pytest.raises(InsufficientEdgesError):
            fit_dual_dirac(np.zeros(50))

    def test_bad_quantile_levels(self, rng):
        tie = rng.normal(0.0, 1e-12, size=1000)
        with pytest.raises(MeasurementError):
            fit_dual_dirac(tie, p_outer=0.2, p_inner=0.1)


class TestTotalJitter:
    def test_tj_formula(self):
        model = DualDiracModel(
            rj_sigma=1e-12, dj_pp=4e-12, mu_left=-2e-12, mu_right=2e-12
        )
        expected = 4e-12 + 2 * q_ber(1e-12) * 1e-12
        assert model.total_jitter(1e-12) == pytest.approx(expected)

    def test_tj_grows_with_lower_ber(self):
        model = DualDiracModel(
            rj_sigma=1e-12, dj_pp=0.0, mu_left=0.0, mu_right=0.0
        )
        assert model.total_jitter(1e-15) > model.total_jitter(1e-9)

    def test_convenience_function(self, rng):
        tie = rng.normal(0.0, 1e-12, size=20000)
        tj = total_jitter_at_ber(tie, 1e-12)
        # Pure RJ: TJ ~ 14 sigma at 1e-12.
        assert tj == pytest.approx(14.1e-12, rel=0.15)
