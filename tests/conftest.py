"""Shared fixtures for the test suite.

Expensive artefacts (calibrated delay lines, standard stimuli) are
session-scoped: the objects are deterministic given their seeds, so
sharing them across tests changes nothing about what is verified.
"""

import numpy as np
import pytest

from repro.core import (
    CombinedDelayLine,
    FineDelayLine,
    calibrate_fine_delay,
    calibration_stimulus,
)
from repro.signals import prbs_sequence, synthesize_nrz


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def short_stimulus():
    """A short 2.4 Gbps PRBS7 record for fast circuit tests."""
    return calibration_stimulus(n_bits=60, dt=1e-12)


@pytest.fixture(scope="session")
def standard_stimulus():
    """A full-period 2.4 Gbps PRBS7 record."""
    return calibration_stimulus(n_bits=127, dt=1e-12)


@pytest.fixture(scope="session")
def fine_line():
    """A default 4-stage fine delay line (do not mutate vctrl state
    without restoring it)."""
    return FineDelayLine(seed=777)


@pytest.fixture(scope="session")
def fine_table(short_stimulus):
    """A calibration table for a default 4-stage line."""
    line = FineDelayLine(seed=778)
    return calibrate_fine_delay(
        line,
        stimulus=short_stimulus,
        n_points=9,
        rng=np.random.default_rng(5),
    )


@pytest.fixture(scope="session")
def calibrated_combined(short_stimulus):
    """A calibrated combined delay line (shared, read-mostly)."""
    line = CombinedDelayLine(seed=779)
    line.calibrate(stimulus=short_stimulus, n_points=9)
    return line
