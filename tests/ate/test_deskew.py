"""Tests for the deskew controller (slower: full system flows)."""

import numpy as np
import pytest

from repro.ate import DeskewController, ParallelBus
from repro.errors import DeskewError


@pytest.fixture(scope="module")
def small_bus():
    bus = ParallelBus(n_channels=3, skew_spread=150e-12, seed=21)
    bus.calibrate_delay_lines(n_points=7)
    return bus


class TestValidation:
    def test_rejects_bad_tolerance(self, small_bus):
        with pytest.raises(DeskewError):
            DeskewController(small_bus, tolerance=0.0)

    def test_rejects_zero_iterations(self, small_bus):
        with pytest.raises(DeskewError):
            DeskewController(small_bus, max_iterations=0)

    def test_deskew_requires_delay_lines(self):
        bus = ParallelBus(n_channels=2, with_delay_circuits=False, seed=1)
        controller = DeskewController(bus, n_bits=40)
        with pytest.raises(DeskewError):
            controller.deskew()

    def test_deskew_requires_calibration(self):
        bus = ParallelBus(n_channels=2, seed=1)
        controller = DeskewController(bus, n_bits=40)
        with pytest.raises(DeskewError):
            controller.deskew()


class TestMeasurement:
    def test_arrivals_match_skews(self, small_bus):
        controller = DeskewController(small_bus, n_bits=60)
        arrivals = controller.measure_arrivals(
            np.random.default_rng(2), through_delay_lines=False
        )
        expected = [
            c.static_skew
            + c.programmable.actual_delay()
            - small_bus.channels[0].static_skew
            - small_bus.channels[0].programmable.actual_delay()
            for c in small_bus.channels
        ]
        np.testing.assert_allclose(arrivals, expected, atol=2e-12)


class TestDeskewFlows:
    def test_full_deskew_meets_requirement(self, small_bus):
        controller = DeskewController(small_bus, n_bits=60)
        report = controller.deskew(np.random.default_rng(5))
        assert report.converged
        assert report.final_spread <= 5e-12
        assert report.final_spread < report.initial_spread / 5

    def test_coarse_only_leaves_residual(self):
        bus = ParallelBus(
            n_channels=3,
            skew_spread=150e-12,
            with_delay_circuits=False,
            seed=21,
        )
        controller = DeskewController(bus, n_bits=60)
        report = controller.deskew_coarse_only(np.random.default_rng(5))
        # Improves the bulk skew but cannot reach picoseconds.
        assert report.final_spread < report.initial_spread
        assert report.final_spread > 5e-12

    def test_report_fields(self, small_bus):
        controller = DeskewController(small_bus, n_bits=60)
        report = controller.deskew(np.random.default_rng(6))
        assert len(report.initial_arrivals) == 3
        assert len(report.final_arrivals) == 3
        assert len(report.ate_steps) == 3
        assert len(report.fine_targets) == 3
        assert report.iterations >= 1


class TestEventBackend:
    def test_event_measurement_matches_waveform(self, small_bus):
        waveform_ctl = DeskewController(small_bus, n_bits=60)
        event_ctl = DeskewController(
            small_bus, n_bits=60, measurement="event"
        )
        wf = waveform_ctl.measure_arrivals(
            np.random.default_rng(2), through_delay_lines=False
        )
        ev = event_ctl.measure_arrivals_event(
            np.random.default_rng(2), through_delay_lines=False
        )
        # Without delay circuits the two backends measure the same
        # channel offsets (waveform rendering vs analytic edges).
        np.testing.assert_allclose(wf, ev, atol=1e-12)

    def test_event_deskew_converges(self):
        bus = ParallelBus(n_channels=3, skew_spread=150e-12, seed=31)
        bus.calibrate_delay_lines(n_points=7)
        controller = DeskewController(
            bus, n_bits=60, measurement="event"
        )
        report = controller.deskew(np.random.default_rng(5))
        assert report.converged
        assert report.final_spread <= 5e-12

    def test_rejects_unknown_backend(self, small_bus):
        with pytest.raises(DeskewError):
            DeskewController(small_bus, measurement="psychic")
