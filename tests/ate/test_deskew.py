"""Tests for the deskew controller (slower: full system flows)."""

import numpy as np
import pytest

from repro.ate import DeskewController, ParallelBus
from repro.core import calibration_stimulus
from repro.errors import DeskewError


@pytest.fixture(scope="module")
def small_bus():
    bus = ParallelBus(n_channels=3, skew_spread=150e-12, seed=21)
    bus.calibrate_delay_lines(n_points=7)
    return bus


class TestValidation:
    def test_rejects_bad_tolerance(self, small_bus):
        with pytest.raises(DeskewError):
            DeskewController(small_bus, tolerance=0.0)

    def test_rejects_zero_iterations(self, small_bus):
        with pytest.raises(DeskewError):
            DeskewController(small_bus, max_iterations=0)

    def test_deskew_requires_delay_lines(self):
        bus = ParallelBus(n_channels=2, with_delay_circuits=False, seed=1)
        controller = DeskewController(bus, n_bits=40)
        with pytest.raises(DeskewError):
            controller.deskew()

    def test_deskew_requires_calibration(self):
        bus = ParallelBus(n_channels=2, seed=1)
        controller = DeskewController(bus, n_bits=40)
        with pytest.raises(DeskewError):
            controller.deskew()


class TestMeasurement:
    def test_arrivals_match_skews(self, small_bus):
        controller = DeskewController(small_bus, n_bits=60)
        arrivals = controller.measure_arrivals(
            np.random.default_rng(2), through_delay_lines=False
        )
        expected = [
            c.static_skew
            + c.programmable.actual_delay()
            - small_bus.channels[0].static_skew
            - small_bus.channels[0].programmable.actual_delay()
            for c in small_bus.channels
        ]
        np.testing.assert_allclose(arrivals, expected, atol=2e-12)


class TestDeskewFlows:
    def test_full_deskew_meets_requirement(self, small_bus):
        controller = DeskewController(small_bus, n_bits=60)
        report = controller.deskew(np.random.default_rng(5))
        assert report.converged
        assert report.final_spread <= 5e-12
        assert report.final_spread < report.initial_spread / 5

    def test_coarse_only_leaves_residual(self):
        bus = ParallelBus(
            n_channels=3,
            skew_spread=150e-12,
            with_delay_circuits=False,
            seed=21,
        )
        controller = DeskewController(bus, n_bits=60)
        report = controller.deskew_coarse_only(np.random.default_rng(5))
        # Improves the bulk skew but cannot reach picoseconds.
        assert report.final_spread < report.initial_spread
        assert report.final_spread > 5e-12

    def test_report_fields(self, small_bus):
        controller = DeskewController(small_bus, n_bits=60)
        report = controller.deskew(np.random.default_rng(6))
        assert len(report.initial_arrivals) == 3
        assert len(report.final_arrivals) == 3
        assert len(report.ate_steps) == 3
        assert len(report.fine_targets) == 3
        assert report.iterations >= 1


class TestBatchedAcquisitionEquivalence:
    """Batched and per-channel bus rendering yield the same deskew."""

    @staticmethod
    def _deskew_report(batch_mode):
        bus = ParallelBus(n_channels=8, skew_spread=150e-12, seed=88)
        bus.calibrate_delay_lines(
            stimulus=calibration_stimulus(n_bits=60, dt=1e-12), n_points=5
        )
        original_acquire = bus.acquire
        bus.acquire = lambda *args, **kwargs: original_acquire(
            *args, **{**kwargs, "batch": batch_mode}
        )
        controller = DeskewController(bus, n_bits=60)
        return controller.deskew(np.random.default_rng(5))

    def test_eight_channel_reports_identical(self):
        batched = self._deskew_report(True)
        looped = self._deskew_report(False)
        # Discrete decisions must match exactly; measured times agree to
        # floating-point rounding (the numpy backend's batched slew
        # limiter relaxes to the sequential recurrence's fixed point).
        assert batched.iterations == looped.iterations
        assert batched.converged == looped.converged
        assert batched.ate_steps == looped.ate_steps
        for field in (
            "initial_arrivals",
            "final_arrivals",
            "fine_targets",
        ):
            np.testing.assert_allclose(
                getattr(batched, field),
                getattr(looped, field),
                rtol=0.0,
                atol=1e-14,
            )
        assert batched.initial_spread == pytest.approx(
            looped.initial_spread, abs=1e-14
        )
        assert batched.final_spread == pytest.approx(
            looped.final_spread, abs=1e-14
        )
        assert len(batched.final_arrivals) == 8
        assert batched.converged


class TestEventTruncationGuards:
    """measure_arrivals_event must not silently truncate edge sets."""

    @staticmethod
    def _controller_with_edges(edge_sets):
        bus = ParallelBus(n_channels=2, with_delay_circuits=False, seed=1)
        bus.acquire_edge_times = lambda *args, **kwargs: edge_sets
        return DeskewController(bus, measurement="event")

    def test_small_mismatch_is_silent(self):
        reference = np.arange(20.0)
        controller = self._controller_with_edges(
            [reference, reference[:18] + 1.0]
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            arrivals = controller.measure_arrivals_event()
        assert arrivals == [0.0, 1.0]

    def test_warns_when_counts_disagree_by_more_than_two(self):
        reference = np.arange(20.0)
        controller = self._controller_with_edges(
            [reference, reference[:15] + 1.0]
        )
        with pytest.warns(RuntimeWarning, match="differs"):
            arrivals = controller.measure_arrivals_event()
        assert arrivals == [0.0, 1.0]

    def test_raises_when_fewer_than_half_match(self):
        reference = np.arange(20.0)
        controller = self._controller_with_edges(
            [reference, reference[:5] + 1.0]
        )
        with pytest.raises(DeskewError, match="fewer than half"):
            controller.measure_arrivals_event()


class TestEventBackend:
    def test_event_measurement_matches_waveform(self, small_bus):
        waveform_ctl = DeskewController(small_bus, n_bits=60)
        event_ctl = DeskewController(
            small_bus, n_bits=60, measurement="event"
        )
        wf = waveform_ctl.measure_arrivals(
            np.random.default_rng(2), through_delay_lines=False
        )
        ev = event_ctl.measure_arrivals_event(
            np.random.default_rng(2), through_delay_lines=False
        )
        # Without delay circuits the two backends measure the same
        # channel offsets (waveform rendering vs analytic edges).
        np.testing.assert_allclose(wf, ev, atol=1e-12)

    def test_event_deskew_converges(self):
        bus = ParallelBus(n_channels=3, skew_spread=150e-12, seed=31)
        bus.calibrate_delay_lines(n_points=7)
        controller = DeskewController(
            bus, n_bits=60, measurement="event"
        )
        report = controller.deskew(np.random.default_rng(5))
        assert report.converged
        assert report.final_spread <= 5e-12

    def test_rejects_unknown_backend(self, small_bus):
        with pytest.raises(DeskewError):
            DeskewController(small_bus, measurement="psychic")
