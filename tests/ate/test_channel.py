"""Tests for the ATE channel model."""

import numpy as np
import pytest

from repro.analysis import measure_delay
from repro.ate import ATEChannel
from repro.errors import CircuitError
from repro.signals import crossing_times


BITS = [0, 1, 1, 0, 1, 0, 0, 1] * 4


class TestConstruction:
    def test_defaults(self):
        channel = ATEChannel(seed=1)
        assert channel.bit_rate == pytest.approx(6.4e9)
        assert channel.unit_interval == pytest.approx(156.25e-12)

    def test_rejects_bad_rate(self):
        with pytest.raises(CircuitError):
            ATEChannel(bit_rate=0.0)


class TestDrive:
    def test_static_skew_shifts_edges(self):
        a = ATEChannel(static_skew=0.0, seed=1)
        b = ATEChannel(static_skew=120e-12, seed=1)
        wf_a = a.drive(BITS, 1e-12, np.random.default_rng(2))
        wf_b = b.drive(BITS, 1e-12, np.random.default_rng(2))
        assert measure_delay(wf_a, wf_b).delay == pytest.approx(
            120e-12, abs=1e-15
        )

    def test_programmable_delay_adds(self):
        channel = ATEChannel(static_skew=0.0, seed=1)
        before = channel.drive(BITS, 1e-12, np.random.default_rng(2))
        channel.programmable.set_delay(300e-12)
        after = channel.drive(BITS, 1e-12, np.random.default_rng(2))
        measured = measure_delay(before, after).delay
        assert measured == pytest.approx(
            channel.programmable.actual_delay(), abs=1e-15
        )

    def test_total_offset(self):
        channel = ATEChannel(static_skew=50e-12, seed=1)
        channel.programmable.set_delay(200e-12)
        assert channel.total_offset() == pytest.approx(
            50e-12 + channel.programmable.actual_delay()
        )

    def test_source_jitter_present(self):
        channel = ATEChannel(seed=1)
        wf = channel.drive(BITS, 1e-12)
        edges = crossing_times(wf, 0.0)
        ui = channel.unit_interval
        fractional = (edges - channel.static_skew) / ui
        deviation = np.abs(fractional - np.round(fractional)) * ui
        assert deviation.max() > 0.2e-12  # jitter moved some edges


class TestEdgeTimes:
    def test_matches_waveform_edges(self):
        channel = ATEChannel(static_skew=30e-12, seed=1)
        fast = channel.edge_times(BITS, np.random.default_rng(7))
        wf = channel.drive(BITS, 0.5e-12, np.random.default_rng(7))
        slow = crossing_times(wf, 0.0)
        assert fast.size == slow.size
        np.testing.assert_allclose(fast, slow, atol=0.5e-12)

    def test_includes_programmed_delay(self):
        channel = ATEChannel(seed=1)
        before = channel.edge_times(BITS, np.random.default_rng(7))
        channel.programmable.set_delay(400e-12)
        after = channel.edge_times(BITS, np.random.default_rng(7))
        np.testing.assert_allclose(
            after - before, channel.programmable.actual_delay()
        )
