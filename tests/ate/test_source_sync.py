"""Tests for source-synchronous (forwarded-clock) alignment."""

import numpy as np
import pytest

from repro.ate import SourceSynchronousLink, worst_edge_margin
from repro.errors import DeskewError
from repro.signals import Waveform, synthesize_clock, synthesize_nrz


class TestWorstEdgeMargin:
    def test_centred_clock_has_half_ui_margin(self):
        rate = 2e9
        ui = 1 / rate
        # A DDR forwarded clock toggles once per bit: clock frequency
        # is half the bit rate.
        data = synthesize_nrz([0, 1, 0, 1, 1, 0, 1, 0], rate, 1e-12)
        clock = synthesize_clock(rate / 2, 8, 1e-12).shifted(0.5 * ui)
        margin = worst_edge_margin([data], clock)
        assert margin == pytest.approx(0.5 * ui, rel=0.05)

    def test_aligned_clock_has_zero_margin(self):
        rate = 2e9
        data = synthesize_nrz([0, 1, 0, 1, 1, 0, 1, 0], rate, 1e-12)
        clock = synthesize_clock(rate / 2, 8, 1e-12)
        margin = worst_edge_margin([data], clock)
        assert margin < 0.05 / rate

    def test_worst_lane_dominates(self):
        rate = 2e9
        ui = 1 / rate
        data = synthesize_nrz([0, 1, 0, 1, 1, 0, 1, 0], rate, 1e-12)
        clock = synthesize_clock(rate / 2, 8, 1e-12).shifted(0.5 * ui)
        good = data
        bad = data.shifted(0.4 * ui)  # edges land near the clock
        margin = worst_edge_margin([good, bad], clock)
        assert margin == pytest.approx(0.1 * ui, rel=0.2)

    def test_clock_without_edges_raises(self):
        data = synthesize_nrz([0, 1, 0, 1], 2e9, 1e-12)
        flat = Waveform.constant(0.0, 1e-9, 1e-12)
        with pytest.raises(DeskewError):
            worst_edge_margin([data], flat)


@pytest.fixture(scope="module")
def aligned_link():
    link = SourceSynchronousLink(n_data=3, skew_spread=100e-12, seed=5)
    link.calibrate(n_points=7)
    report = link.align(np.random.default_rng(2), n_bits=80)
    return link, report


class TestSourceSynchronousLink:
    def test_unit_interval(self):
        link = SourceSynchronousLink(bit_rate=6.4e9, seed=1)
        assert link.unit_interval == pytest.approx(156.25e-12)

    def test_data_lanes_deskewed(self, aligned_link):
        _, report = aligned_link
        assert report.data_skew_after <= 5e-12
        assert report.data_skew_after < report.data_skew_before / 5

    def test_clock_centred(self, aligned_link):
        _, report = aligned_link
        # After alignment the worst margin should be a large fraction
        # of the ideal half-UI (jitter eats the rest).
        assert report.clock_margin_after > 0.6 * report.ideal_margin

    def test_alignment_improves_margin(self, aligned_link):
        _, report = aligned_link
        assert report.clock_margin_after > report.clock_margin_before

    def test_programmed_delay_within_range(self, aligned_link):
        link, report = aligned_link
        assert 0.0 <= report.clock_delay_programmed <= (
            link.clock_line.total_range + 1e-12
        )
