"""Tests for the bit-error-rate tester."""

import math

import numpy as np
import pytest

from repro.ate import (
    BertResult,
    BitErrorRateTester,
    ErrorCounter,
    StreamingBitSampler,
    align_pattern,
)
from repro.errors import MeasurementError
from repro.signals import prbs_sequence, synthesize_nrz
from repro.signals.waveform import Waveform


class TestAlignPattern:
    def test_zero_offset(self):
        pattern = prbs_sequence(7, 127)
        received = np.resize(pattern, 300)
        assert align_pattern(received, pattern) == 0

    def test_finds_offset(self):
        pattern = prbs_sequence(7, 127)
        shifted = np.roll(pattern, -17)
        received = np.resize(shifted, 300)
        assert align_pattern(received, pattern) == 17

    def test_tolerates_errors(self):
        pattern = prbs_sequence(7, 127)
        received = np.resize(np.roll(pattern, -5), 254)
        received[10] ^= 1
        received[90] ^= 1
        assert align_pattern(received, pattern) == 5

    def test_rejects_empty(self):
        with pytest.raises(MeasurementError):
            align_pattern(np.array([]), np.array([1, 0]))
        with pytest.raises(MeasurementError):
            align_pattern(np.array([1, 0]), np.array([]))


class TestBitErrorRateTester:
    def test_error_free(self):
        pattern = prbs_sequence(7, 127)
        bert = BitErrorRateTester(pattern)
        result = bert.measure(np.resize(pattern, 500))
        assert result.n_errors == 0
        assert result.ber == 0.0

    def test_counts_injected_errors(self):
        pattern = prbs_sequence(7, 127)
        received = np.resize(pattern, 500)
        received[[3, 100, 400]] ^= 1
        result = BitErrorRateTester(pattern).measure(received)
        assert result.n_errors == 3
        assert result.ber == pytest.approx(3 / 500)

    def test_auto_align_recovers_phase(self):
        pattern = prbs_sequence(7, 127)
        received = np.resize(np.roll(pattern, -40), 400)
        result = BitErrorRateTester(pattern).measure(received)
        assert result.alignment == 40
        assert result.n_errors == 0

    def test_no_align_mode(self):
        pattern = prbs_sequence(7, 127)
        received = np.resize(np.roll(pattern, -40), 400)
        result = BitErrorRateTester(pattern, auto_align=False).measure(
            received
        )
        assert result.n_errors > 50  # misaligned PRBS ~50 % errors

    def test_rejects_empty_pattern(self):
        with pytest.raises(MeasurementError):
            BitErrorRateTester([])

    def test_rejects_non_bits(self):
        with pytest.raises(MeasurementError):
            BitErrorRateTester([0, 1, 2])

    def test_rejects_empty_received(self):
        bert = BitErrorRateTester([0, 1])
        with pytest.raises(MeasurementError):
            bert.measure([])


class TestBerStatistics:
    def test_zero_error_bound_is_3_over_n(self):
        result = BertResult(n_bits=10**6, n_errors=0, alignment=0)
        # -ln(0.05)/N ~ 3/N.
        assert result.ber_upper_bound(0.95) == pytest.approx(
            2.9957e-6, rel=1e-3
        )

    def test_bound_shrinks_with_more_bits(self):
        small = BertResult(n_bits=1000, n_errors=0, alignment=0)
        large = BertResult(n_bits=10**6, n_errors=0, alignment=0)
        assert large.ber_upper_bound() < small.ber_upper_bound()

    def test_bound_exceeds_point_estimate(self):
        result = BertResult(n_bits=10**6, n_errors=10, alignment=0)
        assert result.ber_upper_bound() > result.ber

    def test_k_errors_bound_uses_one_sided_quantile(self):
        # The pass/fail question is one-sided ("could the true BER
        # exceed the target?"), so the k-errors branch must use the
        # one-sided 95 % quantile z ~ 1.645 — matching the zero-error
        # branch's one-sided -ln(1-CL)/N rule — not the two-sided
        # z ~ 1.96 (the pre-fix bug, which inflated every bound).
        result = BertResult(n_bits=10**6, n_errors=10, alignment=0)
        z_one_sided = 1.6448536269514722
        expected = (10 + z_one_sided * math.sqrt(10) + z_one_sided**2) / 1e6
        assert result.ber_upper_bound(0.95) == pytest.approx(
            expected, rel=1e-9
        )
        z_two_sided = 1.959963984540054
        inflated = (10 + z_two_sided * math.sqrt(10) + z_two_sided**2) / 1e6
        assert result.ber_upper_bound(0.95) < inflated

    def test_one_sided_quantile_tracks_confidence(self):
        # At CL the one-sided z solves Phi(z) = CL; spot-check 0.9.
        result = BertResult(n_bits=10**6, n_errors=4, alignment=0)
        z = 1.2815515655446004  # Phi^-1(0.90)
        expected = (4 + z * math.sqrt(4) + z * z) / 1e6
        assert result.ber_upper_bound(0.90) == pytest.approx(
            expected, rel=1e-9
        )

    def test_marginal_pass_not_rejected_by_inflated_bound(self):
        # 10 errors in 1e6 bits: one-sided bound ~1.79e-5 passes a
        # 1.9e-5 target; the two-sided (buggy) bound ~2.00e-5 would
        # have failed this device.
        result = BertResult(n_bits=10**6, n_errors=10, alignment=0)
        assert result.passes(1.9e-5, confidence=0.95)

    def test_passes_target(self):
        result = BertResult(n_bits=10**7, n_errors=0, alignment=0)
        assert result.passes(1e-6)
        assert not result.passes(1e-8)

    def test_bad_confidence(self):
        result = BertResult(n_bits=100, n_errors=0, alignment=0)
        with pytest.raises(MeasurementError):
            result.ber_upper_bound(1.5)

    def test_zero_bits_raises(self):
        result = BertResult(n_bits=0, n_errors=0, alignment=0)
        with pytest.raises(MeasurementError):
            _ = result.ber


class TestErrorCounter:
    def _received(self, n=600, offset=0, error_at=()):
        pattern = prbs_sequence(7, 127)
        received = np.resize(np.roll(pattern, -offset), n)
        for index in error_at:
            received[index] ^= 1
        return pattern, received

    @pytest.mark.parametrize(
        "splits",
        [(600,), (127, 473), (127, 1, 1, 471), (200, 200, 200)],
    )
    def test_fold_matches_monolithic_measure(self, splits):
        pattern, received = self._received(
            offset=13, error_at=(5, 250, 599)
        )
        mono = BitErrorRateTester(pattern).measure(received)
        counter = ErrorCounter(pattern)
        cursor = 0
        for size in splits:
            counter.add(received[cursor : cursor + size])
            cursor += size
        folded = counter.result()
        assert folded.n_bits == mono.n_bits
        assert folded.n_errors == mono.n_errors
        assert folded.alignment == mono.alignment

    def test_alignment_locks_on_first_chunk(self):
        pattern, received = self._received(offset=40)
        counter = ErrorCounter(pattern)
        counter.add(received[:127])
        assert counter.add(received[127:]) == 0
        assert counter.result().alignment == 40

    def test_chunk_error_count_is_returned(self):
        pattern, received = self._received(error_at=(150,))
        counter = ErrorCounter(pattern)
        assert counter.add(received[:100]) == 0
        assert counter.add(received[100:200]) == 1
        assert counter.n_errors == 1
        assert counter.n_bits == 200

    def test_empty_chunk_is_a_noop(self):
        pattern, received = self._received()
        counter = ErrorCounter(pattern)
        counter.add(received[:127])
        assert counter.add(np.empty(0, dtype=np.uint8)) == 0
        assert counter.n_bits == 127

    def test_no_auto_align(self):
        pattern, received = self._received(offset=0)
        counter = ErrorCounter(pattern, auto_align=False)
        counter.add(received)
        assert counter.result().n_errors == 0

    def test_result_without_bits_raises(self):
        pattern, _ = self._received()
        with pytest.raises(MeasurementError):
            ErrorCounter(pattern).result()

    def test_rejects_non_binary_pattern(self):
        with pytest.raises(MeasurementError):
            ErrorCounter(np.array([0, 1, 2]))


class TestStreamingBitSampler:
    BIT_RATE = 1e9

    def _waveform(self, bits, dt=10e-12):
        return synthesize_nrz(bits, self.BIT_RATE, dt)

    def _sample_monolithic(self, waveform, t_start, n_bits):
        instants = t_start + np.arange(n_bits) / self.BIT_RATE
        return (waveform.value_at(instants) > 0.0).astype(np.uint8)

    def _chunks(self, waveform, sizes):
        out, cursor = [], 0
        for size in sizes:
            out.append(
                Waveform(
                    waveform.values[cursor : cursor + size].copy(),
                    waveform.dt,
                    waveform.t0 + waveform.dt * cursor,
                )
            )
            cursor += size
        if cursor < len(waveform):
            out.append(
                Waveform(
                    waveform.values[cursor:].copy(),
                    waveform.dt,
                    waveform.t0 + waveform.dt * cursor,
                )
            )
        return out

    @pytest.mark.parametrize("sizes", [(500,), (33, 47, 100), (1, 1, 1)])
    def test_chunked_equals_monolithic_sampling(self, sizes):
        bits = prbs_sequence(7, 127)
        waveform = self._waveform(bits)
        ui = 1.0 / self.BIT_RATE
        t_start = 0.5 * ui
        expected = self._sample_monolithic(waveform, t_start, 127)
        sampler = StreamingBitSampler(ui, t_start)
        recovered = np.concatenate(
            [sampler.push(c) for c in self._chunks(waveform, sizes)]
        )
        np.testing.assert_array_equal(recovered[:127], expected)

    def test_recovers_transmitted_bits(self):
        bits = prbs_sequence(7, 127)
        waveform = self._waveform(bits)
        ui = 1.0 / self.BIT_RATE
        sampler = StreamingBitSampler(ui, 0.5 * ui)
        recovered = np.concatenate(
            [sampler.push(c) for c in self._chunks(waveform, (400, 700))]
        )
        np.testing.assert_array_equal(recovered[:127], bits)

    def test_seam_instant_interpolates_across_chunks(self):
        # A decision instant landing strictly between the last sample of
        # one chunk and the first of the next: the carried sample must
        # reproduce the monolithic interpolation bit for bit.
        values = np.linspace(-0.4, 0.4, 100)
        waveform = Waveform(values, 1e-12, 0.0)
        ui = 7.3e-12
        t_start = 0.45e-12
        mono = StreamingBitSampler(ui, t_start)
        expected = mono.push(waveform)
        chunked = StreamingBitSampler(ui, t_start)
        got = np.concatenate(
            [chunked.push(c) for c in self._chunks(waveform, (51,))]
        )
        np.testing.assert_array_equal(got, expected)
        assert chunked.bits_sampled == mono.bits_sampled

    def test_instant_before_stream_raises(self):
        waveform = Waveform(np.ones(50), 1e-12, 1e-9)
        sampler = StreamingBitSampler(10e-12, 0.0)
        with pytest.raises(MeasurementError):
            sampler.push(waveform)

    def test_rejects_bad_unit_interval(self):
        with pytest.raises(MeasurementError):
            StreamingBitSampler(0.0, 0.0)
