"""Tests for the parallel bus model."""

import numpy as np
import pytest

from repro.ate import ParallelBus
from repro.errors import CircuitError


class TestConstruction:
    def test_channel_count(self):
        bus = ParallelBus(n_channels=4, seed=1)
        assert len(bus.channels) == 4
        assert len(bus.delay_lines) == 4

    def test_without_delay_circuits(self):
        bus = ParallelBus(n_channels=3, with_delay_circuits=False, seed=1)
        assert bus.delay_lines is None

    def test_skews_within_spread(self):
        bus = ParallelBus(n_channels=8, skew_spread=150e-12, seed=1)
        for channel in bus.channels:
            assert abs(channel.static_skew) <= 150e-12

    def test_skews_differ_between_channels(self):
        bus = ParallelBus(n_channels=4, seed=1)
        skews = {c.static_skew for c in bus.channels}
        assert len(skews) == 4

    def test_reproducible_given_seed(self):
        a = ParallelBus(n_channels=4, seed=9)
        b = ParallelBus(n_channels=4, seed=9)
        assert [c.static_skew for c in a.channels] == [
            c.static_skew for c in b.channels
        ]

    def test_rejects_single_channel(self):
        with pytest.raises(CircuitError):
            ParallelBus(n_channels=1)

    def test_rejects_negative_spread(self):
        with pytest.raises(CircuitError):
            ParallelBus(skew_spread=-1e-12)


class TestAcquire:
    def test_one_record_per_channel(self, rng):
        bus = ParallelBus(n_channels=3, seed=1)
        records = bus.acquire(
            bus.training_bits(40), rng=rng, through_delay_lines=False
        )
        assert len(records) == 3

    def test_training_bits_default(self):
        bus = ParallelBus(n_channels=2, seed=1)
        bits = bus.training_bits()
        assert bits.size == 127

    def test_calibrate_requires_delay_lines(self):
        bus = ParallelBus(n_channels=2, with_delay_circuits=False, seed=1)
        with pytest.raises(CircuitError):
            bus.calibrate_delay_lines()

    def test_records_reflect_skew(self, rng, short_stimulus):
        from repro.analysis import measure_delay

        bus = ParallelBus(n_channels=2, skew_spread=100e-12, seed=3)
        records = bus.acquire(
            bus.training_bits(40),
            rng=np.random.default_rng(1),
            through_delay_lines=False,
        )
        measured = measure_delay(records[0], records[1]).delay
        expected = (
            bus.channels[1].static_skew - bus.channels[0].static_skew
        )
        assert measured == pytest.approx(expected, abs=2e-12)


class TestBatchedAcquire:
    # On the numpy backend the batched slew limiter solves the same
    # recurrence by Jacobi relaxation, so lanes agree with the
    # sequential walk to floating-point rounding rather than bitwise;
    # the python backend runs identical per-sample arithmetic in both
    # modes and stays bit-exact (see the dedicated test below).
    def test_batch_equals_loop_with_explicit_rng(self):
        bus = ParallelBus(n_channels=4, seed=17)
        bits = bus.training_bits(40)
        batched = bus.acquire(
            bits, rng=np.random.default_rng(6), batch=True
        )
        looped = bus.acquire(
            bits, rng=np.random.default_rng(6), batch=False
        )
        for a, b in zip(batched, looped):
            np.testing.assert_allclose(
                a.values, b.values, rtol=0.0, atol=1e-12
            )
            assert a.t0 == b.t0
            assert a.dt == b.dt

    def test_batch_equals_loop_with_private_rngs(self):
        # rng=None: every component on its own generator; two
        # identically-seeded buses must agree across the two modes.
        bits = ParallelBus(n_channels=3, seed=23).training_bits(40)
        batched = ParallelBus(n_channels=3, seed=23).acquire(
            bits, batch=True
        )
        looped = ParallelBus(n_channels=3, seed=23).acquire(
            bits, batch=False
        )
        for a, b in zip(batched, looped):
            np.testing.assert_allclose(
                a.values, b.values, rtol=0.0, atol=1e-12
            )
            assert a.t0 == b.t0

    def test_batch_bit_exact_on_python_backend(self):
        from repro.kernels import use_backend

        bits = ParallelBus(n_channels=2, seed=23).training_bits(20)
        with use_backend("python"):
            batched = ParallelBus(n_channels=2, seed=23).acquire(
                bits, dt=8e-12, batch=True
            )
            looped = ParallelBus(n_channels=2, seed=23).acquire(
                bits, dt=8e-12, batch=False
            )
        for a, b in zip(batched, looped):
            np.testing.assert_array_equal(a.values, b.values)
            assert a.t0 == b.t0
            assert a.dt == b.dt

    def test_batch_flag_irrelevant_without_delay_lines(self):
        bus = ParallelBus(n_channels=2, with_delay_circuits=False, seed=5)
        bits = bus.training_bits(40)
        batched = bus.acquire(
            bits, rng=np.random.default_rng(2), batch=True
        )
        looped = bus.acquire(
            bits, rng=np.random.default_rng(2), batch=False
        )
        for a, b in zip(batched, looped):
            np.testing.assert_array_equal(a.values, b.values)
