"""Failure-mode tests: the system must degrade loudly, not silently."""

import numpy as np
import pytest

from repro.ate import DeskewController, ParallelBus
from repro.errors import CircuitError, DeskewError
from repro.signals import Waveform


class TestDeskewFailureModes:
    def test_huge_skew_reports_nonconvergence(self):
        # Skew beyond the correctable range: the controller must finish
        # and report converged=False rather than raise or loop forever.
        bus = ParallelBus(
            n_channels=2,
            skew_spread=3e-9,  # beyond the ATE's 2 ns programmable range
            with_delay_circuits=False,
            seed=9,
        )
        controller = DeskewController(bus, n_bits=60, max_iterations=2)
        report = controller.deskew_coarse_only(np.random.default_rng(1))
        assert not report.converged

    def test_event_acquisition_rejects_waveform_vctrl(self):
        bus = ParallelBus(n_channels=2, seed=9)
        # Jitter-injection mode: Vctrl is a waveform, which the
        # closed-form event model cannot represent.
        control = Waveform.constant(0.75, 1e-6, 1e-9)
        bus.delay_lines[0].vctrl = control
        with pytest.raises(CircuitError):
            bus.acquire_edge_times(rng=np.random.default_rng(1))

    def test_fine_targets_clamped_to_range(self):
        # A channel whose residual exceeds the line range gets clamped,
        # not crashed; convergence is then reported honestly.
        bus = ParallelBus(n_channels=2, skew_spread=150e-12, seed=12)
        bus.calibrate_delay_lines(n_points=5)
        controller = DeskewController(
            bus, n_bits=60, max_iterations=1, tolerance=0.01e-12
        )
        report = controller.deskew(np.random.default_rng(1))
        for target, line in zip(report.fine_targets, bus.delay_lines):
            assert 0.0 <= target <= line.total_range + 1e-15

    def test_impossible_tolerance_not_converged(self):
        bus = ParallelBus(n_channels=3, skew_spread=100e-12, seed=13)
        bus.calibrate_delay_lines(n_points=5)
        controller = DeskewController(
            bus, n_bits=60, tolerance=1e-15, max_iterations=2
        )
        report = controller.deskew(np.random.default_rng(1))
        assert not report.converged
        # ... but it still improved matters substantially.
        assert report.final_spread < report.initial_spread
