"""Tests for the DUT receiver models."""

import numpy as np
import pytest

from repro.ate import ClockedReceiver, bus_eye_width
from repro.errors import MeasurementError
from repro.signals import Waveform, synthesize_clock, synthesize_nrz


BITS = [0, 1, 1, 0, 1, 0, 0, 1]
RATE = 2e9
UI = 1 / RATE


@pytest.fixture(scope="module")
def data():
    return synthesize_nrz(BITS, RATE, 1e-12)


class TestClockedReceiver:
    def test_samples_correct_bits_at_eye_centre(self, data):
        receiver = ClockedReceiver()
        centres = UI * (np.arange(len(BITS)) + 0.5)
        result = receiver.sample(data, centres)
        np.testing.assert_array_equal(result.bits, BITS)
        assert result.violations == 0

    def test_sampling_at_edges_flags_violations(self, data):
        receiver = ClockedReceiver(setup=20e-12, hold=20e-12)
        # Sample exactly at the bit boundaries (where edges live).
        boundaries = UI * np.arange(1, len(BITS))
        result = receiver.sample(data, boundaries)
        assert result.violations > 0

    def test_sample_with_clock(self, data):
        receiver = ClockedReceiver()
        # A clock aligned so rising edges hit the eye centres.
        clock = synthesize_clock(RATE, len(BITS), 1e-12).shifted(0.5 * UI)
        result = receiver.sample_with_clock(data, clock)
        np.testing.assert_array_equal(
            result.bits[: len(BITS)], BITS
        )

    def test_rejects_empty_sample_times(self, data):
        with pytest.raises(MeasurementError):
            ClockedReceiver().sample(data, np.array([]))

    def test_rejects_negative_setup(self):
        with pytest.raises(MeasurementError):
            ClockedReceiver(setup=-1e-12)

    def test_clock_without_edges_raises(self, data):
        flat = Waveform.constant(0.0, 1e-9, 1e-12)
        with pytest.raises(MeasurementError):
            ClockedReceiver().sample_with_clock(data, flat)

    def test_explicit_threshold(self, data):
        receiver = ClockedReceiver(threshold=0.0)
        centres = UI * (np.arange(len(BITS)) + 0.5)
        result = receiver.sample(data, centres)
        np.testing.assert_array_equal(result.bits, BITS)


class TestBusEyeWidth:
    def test_single_clean_channel_nearly_full(self, data):
        width = bus_eye_width([data], UI)
        assert width > 0.97 * UI

    def test_skew_shrinks_bus_eye(self, data):
        aligned = bus_eye_width([data, data.shifted(0.0)], UI)
        skewed = bus_eye_width([data, data.shifted(60e-12)], UI)
        assert skewed < aligned - 50e-12

    def test_skew_reduces_width_one_for_one(self, data):
        base = bus_eye_width([data], UI)
        skewed = bus_eye_width([data, data.shifted(40e-12)], UI)
        assert base - skewed == pytest.approx(40e-12, abs=2e-12)

    def test_rejects_empty_list(self):
        with pytest.raises(MeasurementError):
            bus_eye_width([], UI)

    def test_rejects_bad_ui(self, data):
        with pytest.raises(MeasurementError):
            bus_eye_width([data], 0.0)

    def test_half_ui_skew_halves_the_eye(self, data):
        # Half-UI skew between two clean channels leaves at most half
        # the aperture (the two crossing populations sit half a bit
        # apart; whichever way the second population folds, the pooled
        # spread is at least UI/2).
        width = bus_eye_width([data, data.shifted(0.5 * UI)], UI)
        assert width <= 0.55 * UI
