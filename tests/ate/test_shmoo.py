"""Tests for the timing shmoo."""

import numpy as np
import pytest

from repro.ate.shmoo import ShmooResult, timing_shmoo
from repro.errors import MeasurementError
from repro.jitter import RandomJitter, jittered_nrz
from repro.signals import prbs_sequence, synthesize_nrz


RATE = 2.4e9
UI = 1 / RATE


@pytest.fixture(scope="module")
def clean_data():
    bits = prbs_sequence(7, 80)
    return bits, synthesize_nrz(bits, RATE, 1e-12)


class TestTimingShmoo:
    def test_clean_signal_opens_wide(self, clean_data):
        bits, wf = clean_data
        shmoo = timing_shmoo(wf, bits, UI, n_positions=21)
        # Errors only near the crossings (offset ~0); wide clean region.
        assert shmoo.opening() > 0.7 * UI

    def test_centre_is_clean(self, clean_data):
        bits, wf = clean_data
        shmoo = timing_shmoo(wf, bits, UI, n_positions=20)
        centre_index = 10  # offset 0.5
        assert shmoo.ber[centre_index] == 0.0

    def test_crossing_region_errors(self, clean_data):
        bits, wf = clean_data
        # Shift sampling so offset 0 sits exactly on the transitions;
        # the edge region is ambiguous and should show errors at some
        # boundary offsets for a jittered copy.
        jittered = jittered_nrz(
            bits,
            RATE,
            1e-12,
            jitter=RandomJitter(15e-12),
            rng=np.random.default_rng(1),
        )
        shmoo = timing_shmoo(jittered, bits, UI, n_positions=21)
        assert shmoo.ber[0] > 0.0  # sampling at the crossing fails

    def test_jitter_shrinks_opening(self, clean_data):
        bits, wf = clean_data
        jittered = jittered_nrz(
            bits,
            RATE,
            1e-12,
            jitter=RandomJitter(20e-12),
            rng=np.random.default_rng(2),
        )
        clean = timing_shmoo(wf, bits, UI, n_positions=41)
        dirty = timing_shmoo(jittered, bits, UI, n_positions=41)
        assert dirty.opening() < clean.opening()

    def test_insertion_delay_honoured(self, clean_data):
        bits, wf = clean_data
        delayed = wf.shifted(0.4e-9)
        shmoo = timing_shmoo(
            delayed, bits, UI, n_positions=21, first_bit_time=0.4e-9
        )
        assert shmoo.opening() > 0.7 * UI

    def test_best_offset_near_centre(self, clean_data):
        bits, wf = clean_data
        shmoo = timing_shmoo(wf, bits, UI, n_positions=21)
        assert 0.2 <= shmoo.best_offset() <= 0.8

    def test_rejects_empty_pattern(self, clean_data):
        _, wf = clean_data
        with pytest.raises(MeasurementError):
            timing_shmoo(wf, [], UI)

    def test_rejects_bad_ui(self, clean_data):
        bits, wf = clean_data
        with pytest.raises(MeasurementError):
            timing_shmoo(wf, bits, -1.0)

    def test_rejects_too_few_positions(self, clean_data):
        bits, wf = clean_data
        with pytest.raises(MeasurementError):
            timing_shmoo(wf, bits, UI, n_positions=1)

    def test_rejects_short_record(self):
        bits = prbs_sequence(7, 4)
        wf = synthesize_nrz(bits, RATE, 1e-12)
        with pytest.raises(MeasurementError):
            timing_shmoo(wf, bits, UI)


class TestShmooResult:
    def test_opening_zero_when_all_bad(self):
        shmoo = ShmooResult(
            offsets=np.linspace(0, 1, 10, endpoint=False),
            ber=np.full(10, 0.5),
            n_bits=100,
            unit_interval=UI,
        )
        assert shmoo.opening() == 0.0

    def test_opening_counts_longest_run(self):
        ber = np.array([0.1, 0.0, 0.0, 0.0, 0.1, 0.0, 0.1, 0.1])
        shmoo = ShmooResult(
            offsets=np.linspace(0, 1, 8, endpoint=False),
            ber=ber,
            n_bits=100,
            unit_interval=8e-12,
        )
        # Longest clean run is 3 positions of width 1 ps each.
        assert shmoo.opening() == pytest.approx(3e-12)

    def test_opening_counts_run_wrapping_ui_boundary(self):
        # Offsets are generated with endpoint=False, so position 0 is
        # the cyclic neighbour of position N-1: the clean region
        # 8,9,0,1 is ONE 4-point run.  Pre-fix code split it into two
        # 2-point runs and reported half the opening.
        ber = np.array([0.0, 0.0, 0.5, 0.5, 0.0, 0.5, 0.5, 0.5, 0.0, 0.0])
        shmoo = ShmooResult(
            offsets=np.linspace(0, 1, 10, endpoint=False),
            ber=ber,
            n_bits=100,
            unit_interval=10e-12,
        )
        assert shmoo.opening() == pytest.approx(4e-12)

    def test_opening_full_ui_when_all_clean(self):
        shmoo = ShmooResult(
            offsets=np.linspace(0, 1, 10, endpoint=False),
            ber=np.zeros(10),
            n_bits=100,
            unit_interval=10e-12,
        )
        assert shmoo.opening() == pytest.approx(10e-12)

    def test_best_offset_centres_widest_run(self):
        # Min-BER positions form two disjoint runs: {0,1} and
        # {5,6,7,8}.  The strobe belongs at the centre of the widest
        # run (index 6.5 -> offset 0.65).  Pre-fix code took the median
        # of all min-BER indices (index 6 -> offset 0.6), a point
        # pulled off-centre by the other run.
        ber = np.array([0.0, 0.0, 0.5, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.5])
        shmoo = ShmooResult(
            offsets=np.linspace(0, 1, 10, endpoint=False),
            ber=ber,
            n_bits=100,
            unit_interval=10e-12,
        )
        assert shmoo.best_offset() == pytest.approx(0.65)

    def test_best_offset_wraps_ui_boundary(self):
        # Widest clean run is 8,9,0,1 (cyclic); its centre sits at
        # wrapped index 9.5 -> offset 0.95.  Pre-fix code returned the
        # median min-BER index (4 -> offset 0.4), a 1-point island.
        ber = np.array([0.0, 0.0, 0.5, 0.5, 0.0, 0.5, 0.5, 0.5, 0.0, 0.0])
        shmoo = ShmooResult(
            offsets=np.linspace(0, 1, 10, endpoint=False),
            ber=ber,
            n_bits=100,
            unit_interval=10e-12,
        )
        assert shmoo.best_offset() == pytest.approx(0.95)

    def test_best_offset_is_a_min_ber_position_on_odd_runs(self):
        ber = np.array([0.5, 0.0, 0.0, 0.0, 0.5, 0.5, 0.5, 0.5])
        shmoo = ShmooResult(
            offsets=np.linspace(0, 1, 8, endpoint=False),
            ber=ber,
            n_bits=100,
            unit_interval=8e-12,
        )
        # Run 1..3, centre index 2 -> offset 0.25.
        assert shmoo.best_offset() == pytest.approx(0.25)
