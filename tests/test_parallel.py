"""The zero-copy IPC layer: shm round-trips and the zero-pickle contract.

``repro.parallel`` moves waveform samples between processes through
``multiprocessing.shared_memory`` instead of the result pickle.  These
tests pin the three properties the worker pools rely on:

* encode → decode is the identity (samples, grids, nesting, and
  non-waveform values all survive);
* an encoded payload's pickle is more than 10x smaller than the naive
  pickle for waveform-carrying results;
* no :class:`Waveform`/:class:`WaveformBatch` is ever pickled on the
  encoded path — asserted via the ``waveform.pickled`` counter hook in
  ``Waveform.__reduce__``.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import instrument, parallel
from repro.signals.waveform import Waveform, WaveformBatch


def _payload():
    rng = np.random.default_rng(0)
    wave = Waveform(rng.normal(size=20000), 1e-12, 3.5e-9)
    batch = WaveformBatch(
        rng.normal(size=(4, 10000)), 1e-12, np.array([0.0, 1e-10, 2e-10, 3e-10])
    )
    return {
        "wave": wave,
        "nested": {"batch": batch, "list": [wave, 1.5, "text"]},
        "big_array": rng.normal(size=30000),
        "small_array": np.arange(8.0),
        "metric": 4.2,
    }


def _assert_roundtrip(original, decoded):
    assert decoded["metric"] == original["metric"]
    assert np.array_equal(decoded["small_array"], original["small_array"])
    assert np.array_equal(decoded["big_array"], original["big_array"])
    wave, wave2 = original["wave"], decoded["wave"]
    assert isinstance(wave2, Waveform)
    assert np.array_equal(wave2.values, wave.values)
    assert wave2.dt == wave.dt and wave2.t0 == wave.t0
    batch, batch2 = original["nested"]["batch"], decoded["nested"]["batch"]
    assert isinstance(batch2, WaveformBatch)
    assert np.array_equal(batch2.values, batch.values)
    assert np.array_equal(batch2.t0, batch.t0)
    assert decoded["nested"]["list"][1:] == [1.5, "text"]


@pytest.mark.skipif(not parallel.SHM_AVAILABLE, reason="no shared memory")
def test_encode_decode_roundtrip_in_process():
    original = _payload()
    decoded = parallel.decode_payload(
        pickle.loads(pickle.dumps(parallel.encode_payload(original)))
    )
    _assert_roundtrip(original, decoded)


def test_decode_is_identity_on_plain_payloads():
    metrics = {"total_range_s": 1.2e-10, "converged": True, "n": [1, 2]}
    assert parallel.decode_payload(metrics) == metrics


@pytest.mark.skipif(not parallel.SHM_AVAILABLE, reason="no shared memory")
def test_encoded_pickle_is_10x_smaller():
    original = _payload()
    naive = parallel.payload_nbytes(original)
    encoded_payload = parallel.encode_payload(original)
    try:
        encoded = parallel.payload_nbytes(encoded_payload)
    finally:
        parallel.release_payload(encoded_payload)
    # 20000 + 4*10000 + 30000 float64 samples ~ 720 kB naive; tokens
    # are a few hundred bytes plus the small inline values.
    assert naive > 10 * encoded, (naive, encoded)


@pytest.mark.skipif(not parallel.SHM_AVAILABLE, reason="no shared memory")
def test_encoded_path_pickles_zero_waveforms():
    original = _payload()
    encoded_payload = parallel.encode_payload(original)
    try:
        with instrument.enabled_scope(reset=True) as registry:
            pickle.dumps(encoded_payload)
            encoded_pickles = registry.snapshot()["counters"].get(
                "waveform.pickled", 0
            )
            pickle.dumps(original)
            naive_pickles = registry.snapshot()["counters"].get(
                "waveform.pickled", 0
            )
    finally:
        parallel.release_payload(encoded_payload)
    assert encoded_pickles == 0
    # wave + batch (pickle memoizes the repeated wave object)
    assert naive_pickles >= 2


def _worker_roundtrip(seed):
    """Worker-side: build a waveform result and encode it for the pipe."""
    rng = np.random.default_rng(seed)
    wave = Waveform(rng.normal(size=20000), 1e-12, 0.0)
    return parallel.encode_payload({"seed": seed, "wave": wave})


@pytest.mark.skipif(not parallel.SHM_AVAILABLE, reason="no shared memory")
def test_cross_process_roundtrip():
    """The real thing: a worker parks samples in shared memory, the
    parent claims them after the worker's future resolves."""
    with ProcessPoolExecutor(max_workers=1) as pool:
        result = parallel.decode_payload(pool.submit(_worker_roundtrip, 7).result())
    assert result["seed"] == 7
    expected = np.random.default_rng(7).normal(size=20000)
    assert np.array_equal(result["wave"].values, expected)


@pytest.mark.skipif(not parallel.SHM_AVAILABLE, reason="no shared memory")
def test_encode_falls_back_inline_when_blocks_unavailable(monkeypatch):
    """If a block cannot be created the value passes through inline —
    bigger, but correct."""

    def refuse(*args, **kwargs):
        raise OSError("no fds left")

    monkeypatch.setattr(
        parallel.shared_memory, "SharedMemory", refuse
    )
    original = _payload()
    encoded = parallel.encode_payload(original)
    assert isinstance(encoded["wave"], Waveform)
    decoded = parallel.decode_payload(encoded)
    _assert_roundtrip(original, decoded)


@pytest.mark.skipif(not parallel.SHM_AVAILABLE, reason="no shared memory")
def test_failed_decode_releases_remaining_blocks():
    """Regression: a decode that raises mid-payload must unlink every
    block it had not yet claimed.  Before the fix, the exception
    propagated immediately and each unvisited token leaked a /dev/shm
    segment for the life of the machine."""
    from multiprocessing import shared_memory

    encoded = parallel.encode_payload(
        {
            "a": np.zeros(300_000),
            "poison": None,
            "b": np.ones(300_000),
            "wave": Waveform(np.full(300_000, 0.25), 1e-12, 0.0),
        }
    )
    assert isinstance(encoded["a"], parallel.ShmArray)
    live_tokens = [
        encoded["b"],
        encoded["wave"].samples,
    ]
    # Poison the payload: a token naming a block that does not exist
    # makes _claim_array raise partway through the dict walk (dicts
    # preserve insertion order, so "a" is claimed first).
    encoded["poison"] = parallel.ShmArray("repro-no-such-block", (4,), "float64")

    with pytest.raises(FileNotFoundError):
        parallel.decode_payload(encoded)

    # Every block after the poison must be gone, not leaked.
    for token in live_tokens:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=token.name)
