"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold across module boundaries, exercised on
randomly generated inputs: delay additivity, monotonicity of control
laws, calibration round trips, and model-order sanity for the event
model under random (but physical) parameters.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import measure_delay
from repro.circuits import (
    Chain,
    ControlDAC,
    IdealDelay,
    TransmissionLine,
)
from repro.core import CalibrationTable, EventDelayModel
from repro.circuits.vga_buffer import BufferParams
from repro.signals import synthesize_nrz


def _stimulus():
    return synthesize_nrz([0, 1, 1, 0, 1, 0, 0, 1] * 2, 2.4e9, 1e-12)


STIM = _stimulus()


class TestDelayAdditivity:
    @given(
        st.lists(
            st.floats(min_value=-200e-12, max_value=200e-12),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_ideal_delays_add(self, delays):
        chain = Chain(*[IdealDelay(d) for d in delays])
        out = chain.process(STIM)
        measured = measure_delay(STIM, out).delay
        assert measured == pytest.approx(sum(delays), abs=1e-15)

    @given(
        st.floats(min_value=0.0, max_value=80e-12),
        st.floats(min_value=0.0, max_value=80e-12),
    )
    @settings(max_examples=30, deadline=None)
    def test_lossless_lines_add(self, d1, d2):
        chain = Chain(
            TransmissionLine(d1, loss_db=0.0, dispersive=False),
            TransmissionLine(d2, loss_db=0.0, dispersive=False),
        )
        out = chain.process(STIM)
        assert measure_delay(STIM, out).delay == pytest.approx(
            d1 + d2, abs=1e-15
        )


class TestControlLawProperties:
    @given(
        st.floats(min_value=0.02, max_value=0.3),
        st.floats(min_value=0.35, max_value=0.9),
        st.floats(min_value=0.5, max_value=4.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_amplitude_curve_monotone_for_any_shape(
        self, a_min, a_max, shape
    ):
        assume(a_min < a_max)
        params = BufferParams(
            amplitude_min=a_min, amplitude_max=a_max, control_shape=shape
        )
        v = np.linspace(params.vctrl_min, params.vctrl_max, 33)
        amplitudes = params.amplitude_from_vctrl(v)
        assert np.all(np.diff(amplitudes) > 0)
        assert amplitudes[0] == pytest.approx(a_min, rel=1e-6)
        assert amplitudes[-1] == pytest.approx(a_max, rel=1e-6)

    @given(
        st.floats(min_value=1e9, max_value=20e9),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_compression_monotone_in_half_period(self, corner, order):
        params = BufferParams(
            compression_corner=corner, compression_order=order
        )
        periods = np.geomspace(5e-12, 5e-9, 24)
        factors = params.compression_factor(periods)
        assert np.all(np.diff(factors) >= 0)
        assert np.all((factors > 0) & (factors <= 1))


class TestCalibrationProperties:
    @given(
        st.lists(
            st.floats(min_value=-2e-12, max_value=2e-12),
            min_size=5,
            max_size=15,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_isotonic_cleanup_never_decreases(self, noise):
        # A noisy but basically rising curve stays invertible.
        n = len(noise)
        base = np.linspace(0.0, 50e-12, n)
        table = CalibrationTable(
            vctrls=np.linspace(0.0, 1.5, n),
            delays=base + np.asarray(noise),
        )
        assert np.all(np.diff(table.delays) >= 0)
        # Inversion round trip holds for any delay inside the range.
        mid = table.delays[0] + table.range / 2
        vctrl = table.vctrl_for_delay(mid)
        assert table.delay_for_vctrl(vctrl) == pytest.approx(
            mid, abs=1e-15
        )

    @given(st.integers(min_value=4, max_value=14), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_dac_monotone_for_any_part(self, n_bits, seed):
        dac = ControlDAC(n_bits=n_bits, dnl_lsb=0.5, seed=seed)
        codes = np.linspace(0, dac.n_codes - 1, min(dac.n_codes, 64)).astype(
            int
        )
        voltages = [dac.voltage(int(c)) for c in codes]
        assert all(b > a for a, b in zip(voltages, voltages[1:]))


class TestEventModelProperties:
    @given(
        st.floats(min_value=20e9, max_value=100e9),
        st.floats(min_value=5e9, max_value=30e9),
    )
    @settings(max_examples=40, deadline=None)
    def test_delay_monotone_in_vctrl_for_any_physics(
        self, slew_rate, bandwidth
    ):
        params = BufferParams(slew_rate=slew_rate, bandwidth=bandwidth)
        model = EventDelayModel(params=params)
        vctrls = np.linspace(0.0, 1.5, 9)
        delays = [model.total_delay(float(v)) for v in vctrls]
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    @given(st.floats(min_value=30e-12, max_value=1e-9))
    @settings(max_examples=40, deadline=None)
    def test_range_never_exceeds_dc_range(self, half_period):
        model = EventDelayModel()
        assert model.delay_range(half_period) <= model.delay_range() + 1e-15

    @given(
        st.lists(
            st.floats(min_value=50e-12, max_value=2e-9),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_propagated_edges_stay_monotone(self, gaps):
        times = np.cumsum(np.asarray(gaps))
        model = EventDelayModel()
        out = model.propagate_edges(
            times, vctrl=1.2, rng=np.random.default_rng(1)
        )
        assert np.all(np.diff(out) >= 0)
