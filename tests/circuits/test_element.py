"""Tests for the circuit-element framework."""

import numpy as np
import pytest

from repro.circuits import Chain, CircuitElement, Gain, IdealDelay, Inverter
from repro.errors import CircuitError
from repro.signals import Waveform, synthesize_nrz
from repro.analysis import measure_delay


@pytest.fixture
def nrz():
    return synthesize_nrz([0, 1, 0, 0, 1, 1, 0, 1], 2e9, 1e-12)


class TestIdealDelay:
    def test_shifts_time_axis(self, nrz):
        out = IdealDelay(40e-12).process(nrz)
        assert out.t0 == pytest.approx(nrz.t0 + 40e-12)
        np.testing.assert_array_equal(out.values, nrz.values)

    def test_measured_delay(self, nrz):
        out = IdealDelay(40e-12).process(nrz)
        assert measure_delay(nrz, out).delay == pytest.approx(
            40e-12, abs=1e-15
        )

    def test_zero_and_negative_delay(self, nrz):
        assert IdealDelay(0.0).process(nrz).t0 == nrz.t0
        out = IdealDelay(-10e-12).process(nrz)
        assert out.t0 == pytest.approx(nrz.t0 - 10e-12)


class TestGainInverter:
    def test_gain_scales(self, nrz):
        out = Gain(2.0).process(nrz)
        np.testing.assert_allclose(out.values, 2 * nrz.values)

    def test_gain_rejects_zero(self):
        with pytest.raises(CircuitError):
            Gain(0.0)

    def test_inverter(self, nrz):
        out = Inverter().process(nrz)
        np.testing.assert_allclose(out.values, -nrz.values)

    def test_double_inversion_identity(self, nrz):
        out = Inverter().process(Inverter().process(nrz))
        np.testing.assert_allclose(out.values, nrz.values)


class TestChain:
    def test_applies_in_order(self, nrz):
        chained = Chain(Gain(2.0), IdealDelay(10e-12))
        out = chained.process(nrz)
        assert out.t0 == pytest.approx(nrz.t0 + 10e-12)
        np.testing.assert_allclose(out.values, 2 * nrz.values)

    def test_flattens_nested_chains(self):
        inner = Chain(Gain(2.0), Gain(3.0))
        outer = Chain(inner, Gain(4.0))
        assert len(outer) == 3

    def test_empty_chain_is_identity(self, nrz):
        out = Chain().process(nrz)
        np.testing.assert_array_equal(out.values, nrz.values)

    def test_rejects_non_elements(self):
        with pytest.raises(CircuitError):
            Chain(Gain(1.0), "not an element")

    def test_elements_property(self):
        g = Gain(2.0)
        d = IdealDelay(1e-12)
        assert Chain(g, d).elements == (g, d)

    def test_callable_shorthand(self, nrz):
        chain = Chain(Gain(2.0))
        np.testing.assert_array_equal(
            chain(nrz).values, chain.process(nrz).values
        )


class TestRngHandling:
    def test_private_rng_reproducible_after_reseed(self, nrz):
        from repro.circuits import VariableGainBuffer

        buffer = VariableGainBuffer(seed=42)
        first = buffer.process(nrz)
        buffer.reseed(42)
        second = buffer.process(nrz)
        np.testing.assert_array_equal(first.values, second.values)

    def test_explicit_rng_overrides_private(self, nrz):
        from repro.circuits import VariableGainBuffer

        a = VariableGainBuffer(seed=1)
        b = VariableGainBuffer(seed=2)
        out_a = a.process(nrz, np.random.default_rng(9))
        out_b = b.process(nrz, np.random.default_rng(9))
        np.testing.assert_array_equal(out_a.values, out_b.values)

    def test_successive_calls_differ_without_rng(self, nrz):
        from repro.circuits import VariableGainBuffer

        buffer = VariableGainBuffer(seed=1)
        first = buffer.process(nrz)
        second = buffer.process(nrz)
        assert not np.array_equal(first.values, second.values)
