"""Tests for the variable-gain buffer — the paper's key component."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import measure_delay
from repro.circuits import (
    BufferParams,
    VariableGainBuffer,
    band_limited_noise,
    slew_limit,
)
from repro.circuits.vga_buffer import compressive_slew_limit
from repro.errors import CircuitError, ControlRangeError
from repro.signals import Waveform, synthesize_nrz


@pytest.fixture(scope="module")
def nrz():
    return synthesize_nrz(
        [0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0] * 3, 2.4e9, 1e-12
    )


class TestBufferParams:
    def test_defaults_valid(self):
        params = BufferParams()
        assert params.amplitude_min < params.amplitude_max

    def test_amplitude_curve_endpoints(self):
        params = BufferParams()
        assert params.amplitude_from_vctrl(params.vctrl_min) == pytest.approx(
            params.amplitude_min
        )
        assert params.amplitude_from_vctrl(params.vctrl_max) == pytest.approx(
            params.amplitude_max
        )

    def test_amplitude_curve_clamps(self):
        params = BufferParams()
        assert params.amplitude_from_vctrl(-10.0) == pytest.approx(
            params.amplitude_min
        )
        assert params.amplitude_from_vctrl(+10.0) == pytest.approx(
            params.amplitude_max
        )

    def test_amplitude_curve_monotone(self):
        params = BufferParams()
        v = np.linspace(params.vctrl_min, params.vctrl_max, 101)
        amplitudes = params.amplitude_from_vctrl(v)
        assert np.all(np.diff(amplitudes) > 0)

    def test_amplitude_curve_s_shape(self):
        # Slope at the centre exceeds slope at the ends.
        params = BufferParams()
        def slope(v, h=1e-3):
            return (
                params.amplitude_from_vctrl(v + h)
                - params.amplitude_from_vctrl(v - h)
            ) / (2 * h)
        centre = (params.vctrl_min + params.vctrl_max) / 2
        assert slope(centre) > slope(params.vctrl_min + 0.01)
        assert slope(centre) > slope(params.vctrl_max - 0.01)

    def test_array_input(self):
        params = BufferParams()
        out = params.amplitude_from_vctrl(np.array([0.0, 0.75, 1.5]))
        assert out.shape == (3,)

    def test_compression_factor_limits(self):
        params = BufferParams()
        assert params.compression_factor(1.0) == pytest.approx(1.0)
        assert params.compression_factor(1e-12) < 0.01

    def test_compression_factor_monotone(self):
        params = BufferParams()
        periods = np.logspace(-12, -9, 20)
        factors = params.compression_factor(periods)
        assert np.all(np.diff(factors) > 0)

    def test_compression_disabled(self):
        params = BufferParams(compression_corner=float("inf"))
        assert params.compression_factor(1e-12) == pytest.approx(1.0)

    def test_nominal_delay_grows_with_amplitude(self):
        params = BufferParams()
        assert params.nominal_delay(0.75) > params.nominal_delay(0.1)

    def test_nominal_delay_compresses_at_speed(self):
        params = BufferParams()
        slow = params.nominal_delay(0.75, half_period=math.inf)
        fast = params.nominal_delay(0.75, half_period=78e-12)
        assert fast < slow

    def test_with_updates(self):
        params = BufferParams().with_updates(slew_rate=99e9)
        assert params.slew_rate == 99e9
        assert params.bandwidth == BufferParams().bandwidth

    @pytest.mark.parametrize(
        "field,value",
        [
            ("amplitude_min", -0.1),
            ("amplitude_min", 0.9),  # above amplitude_max
            ("v_linear", 0.0),
            ("slew_rate", -1.0),
            ("bandwidth", 0.0),
            ("noise_sigma", -1e-3),
            ("compression_corner", 0.0),
            ("compression_order", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(CircuitError):
            BufferParams(**{field: value})


class TestSlewLimit:
    def test_tracks_slow_target(self):
        target = np.linspace(0.0, 1.0, 100)
        out = slew_limit(target, max_step=0.5)
        np.testing.assert_allclose(out, target)

    def test_limits_fast_step(self):
        target = np.concatenate([np.zeros(5), np.ones(20)])
        out = slew_limit(target, max_step=0.1)
        # After the step the output climbs 0.1 per sample.
        np.testing.assert_allclose(out[5:15], 0.1 * np.arange(1, 11))

    def test_initial_override(self):
        target = np.ones(10)
        out = slew_limit(target, max_step=0.25, initial=0.0)
        assert out[0] == pytest.approx(0.25)

    def test_symmetric_down(self):
        target = np.concatenate([np.ones(5), -np.ones(20)])
        out = slew_limit(target, max_step=0.5)
        assert out[6] == pytest.approx(0.0)

    def test_rejects_bad_step(self):
        with pytest.raises(CircuitError):
            slew_limit(np.zeros(5), max_step=0.0)

    @given(
        st.lists(
            st.floats(min_value=-1, max_value=1), min_size=2, max_size=100
        ),
        st.floats(min_value=0.01, max_value=2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_step_bound_invariant(self, targets, max_step):
        out = slew_limit(np.asarray(targets), max_step)
        assert np.all(np.abs(np.diff(out)) <= max_step + 1e-12)

    @given(
        st.lists(
            st.floats(min_value=-1, max_value=1), min_size=2, max_size=100
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_output_within_target_envelope(self, targets):
        targets = np.asarray(targets)
        out = slew_limit(targets, max_step=0.3)
        assert out.max() <= targets.max() + 1e-12
        assert out.min() >= targets.min() - 1e-12


class TestBandLimitedNoise:
    def test_exact_sigma(self, rng):
        noise = band_limited_noise(50000, 5e-3, 20e9, 1e-12, rng)
        # Normalised to exact RMS; std differs only by the tiny mean.
        assert np.std(noise) == pytest.approx(5e-3, rel=1e-3)

    def test_sigma_independent_of_dt(self):
        a = band_limited_noise(
            20000, 5e-3, 20e9, 1e-12, np.random.default_rng(1)
        )
        b = band_limited_noise(
            20000, 5e-3, 20e9, 0.25e-12, np.random.default_rng(1)
        )
        assert np.std(a) == pytest.approx(np.std(b), rel=1e-2)

    def test_zero_sigma(self, rng):
        assert np.all(band_limited_noise(100, 0.0, 20e9, 1e-12, rng) == 0.0)

    def test_zero_samples(self, rng):
        assert band_limited_noise(0, 5e-3, 20e9, 1e-12, rng).size == 0

    def test_bandwidth_limits_spectrum(self, rng):
        # Narrow-band noise has longer correlation than wide-band.
        narrow = band_limited_noise(50000, 1.0, 0.5e9, 1e-12, rng)
        wide = band_limited_noise(50000, 1.0, 600e9, 1e-12, rng)
        def lag1(x):
            return np.corrcoef(x[:-1], x[1:])[0, 1]
        assert lag1(narrow) > 0.9
        assert lag1(wide) < 0.5

    def test_record_starts_stationary(self):
        # Regression: the pre-fix filter started from zero state, so
        # every record opened with a depressed startup transient (the
        # first sample was essentially 0 for narrow-band noise).  The
        # record must be a snapshot of a long-running process: the
        # first sample carries full noise power.
        sigma = 0.1
        first = np.array(
            [
                band_limited_noise(
                    64, sigma, 5e9, 1e-12, np.random.default_rng(seed)
                )[0]
                for seed in range(400)
            ]
        )
        # Per-record exact-RMS rescaling widens the spread slightly;
        # pre-fix the first-sample std was ~0.02 * sigma.
        assert np.std(first) == pytest.approx(sigma, rel=0.25)

    def test_steady_state_power_record_length_invariant(self):
        # Regression: rescaling to exact RMS over a record whose head
        # was a zero-state startup transient *inflated* the tail power
        # of short records (~30 % at 32 samples with a 5 GHz corner)
        # while leaving long records nearly unbiased.  The delivered
        # noise power must not depend on how long a record the caller
        # asked for.
        sigma, bandwidth, dt = 0.1, 5e9, 1e-12

        def tail_power(n, seed):
            noise = band_limited_noise(
                n, sigma, bandwidth, dt, np.random.default_rng(seed)
            )
            return np.mean(noise[n // 2 :] ** 2)

        short = np.mean([tail_power(32, s) for s in range(300)])
        long = np.mean([tail_power(4096, s) for s in range(30)])
        assert math.sqrt(short) == pytest.approx(sigma, rel=0.08)
        assert math.sqrt(short) == pytest.approx(math.sqrt(long), rel=0.08)


class TestVariableGainBuffer:
    def test_output_amplitude_tracks_vctrl(self, nrz, rng):
        for vctrl, expect in ((0.0, 0.1), (1.5, 0.75)):
            buffer = VariableGainBuffer(vctrl=vctrl, seed=1)
            out = buffer.process(nrz, rng)
            assert out.amplitude() == pytest.approx(expect, rel=0.1)

    def test_delay_grows_with_vctrl(self, nrz, rng):
        delays = []
        for vctrl in (0.0, 0.75, 1.5):
            buffer = VariableGainBuffer(vctrl=vctrl, seed=1)
            out = buffer.process(nrz, np.random.default_rng(2))
            delays.append(measure_delay(nrz, out).delay)
        assert delays[0] < delays[1] < delays[2]

    def test_per_stage_range_close_to_nominal(self, nrz):
        # The emergent range should be near (A_max-A_min)/SR.
        params = BufferParams()
        outs = {}
        for vctrl in (0.0, 1.5):
            buffer = VariableGainBuffer(params, vctrl=vctrl, seed=1)
            outs[vctrl] = buffer.process(nrz, np.random.default_rng(2))
        measured = measure_delay(outs[0.0], outs[1.5]).delay
        nominal = (
            params.amplitude_max - params.amplitude_min
        ) / params.slew_rate
        assert measured == pytest.approx(nominal, rel=0.5)

    def test_vctrl_setter_validation(self):
        buffer = VariableGainBuffer()
        with pytest.raises(ControlRangeError):
            buffer.vctrl = float("nan")

    def test_vctrl_waveform_accepted(self, nrz, rng):
        control = Waveform.constant(0.75, 1e-6, 1e-9, t0=-1e-7)
        buffer = VariableGainBuffer(vctrl=control, seed=1)
        out = buffer.process(nrz, rng)
        assert out.amplitude() > 0.2

    def test_vctrl_waveform_equivalent_to_scalar(self, nrz):
        # A constant control waveform must behave as the scalar.
        control = Waveform.constant(0.9, 1e-6, 1e-9, t0=-1e-7)
        a = VariableGainBuffer(vctrl=control, seed=1).process(
            nrz, np.random.default_rng(5)
        )
        b = VariableGainBuffer(vctrl=0.9, seed=1).process(
            nrz, np.random.default_rng(5)
        )
        np.testing.assert_allclose(a.values, b.values, atol=1e-9)

    def test_propagation_delay_shifts_t0(self, nrz, rng):
        buffer = VariableGainBuffer(seed=1)
        out = buffer.process(nrz, rng)
        assert out.t0 == pytest.approx(
            nrz.t0 + buffer.params.propagation_delay
        )

    def test_noiseless_buffer_is_deterministic(self, nrz):
        params = BufferParams(noise_sigma=0.0)
        a = VariableGainBuffer(params, seed=1).process(nrz)
        b = VariableGainBuffer(params, seed=2).process(nrz)
        np.testing.assert_array_equal(a.values, b.values)

    def test_amplitude_at_scalar(self, nrz):
        buffer = VariableGainBuffer(vctrl=1.5)
        assert buffer.amplitude_at(nrz) == pytest.approx(0.75)


class TestCompressiveSlewLimit:
    def test_matches_plain_slew_for_slow_signal(self):
        # A slow square wave sees no compression; outputs must agree.
        n = 4000
        v = np.where((np.arange(n) // 1000) % 2 == 0, -0.4, 0.4)
        target = 0.5 * v
        plain = slew_limit(target, max_step=0.01, initial=target[0])
        comp = compressive_slew_limit(
            v,
            np.zeros(n),
            target,
            max_step=0.01,
            dt=1e-12,
            hysteresis=0.1,
            corner=6.2e9,
            order=3,
            initial_interval=1000e-12,
        )
        # The 1 ns half period still carries ~0.05 % compression.
        np.testing.assert_allclose(comp, plain, atol=5e-4)

    def test_fast_signal_compressed(self):
        # A fast square wave's excursions shrink.
        n = 4000
        period = 100  # samples -> 50 ps half period at dt=0.5ps
        v = np.where((np.arange(n) // (period // 2)) % 2 == 0, -0.4, 0.4)
        target = 0.5 * v
        out = compressive_slew_limit(
            v,
            np.zeros(n),
            target,
            max_step=0.05,
            dt=0.5e-12,
            hysteresis=0.1,
            corner=6.2e9,
            order=3,
            initial_interval=25e-12,
        )
        # Steady-state excursion well below the 0.2 V target.
        assert np.abs(out[2000:]).max() < 0.15

    def test_floor_always_delivered(self):
        # With the whole amplitude in the floor, compression is a no-op.
        n = 2000
        v = np.where((np.arange(n) // 50) % 2 == 0, -0.4, 0.4)
        floor_target = 0.1 * np.sign(v)
        out = compressive_slew_limit(
            v,
            floor_target,
            np.zeros(n),
            max_step=0.05,
            dt=0.5e-12,
            hysteresis=0.1,
            corner=6.2e9,
            order=3,
            initial_interval=12.5e-12,
        )
        assert np.abs(out[1000:]).max() == pytest.approx(0.1, rel=0.05)

    def test_rejects_bad_step(self):
        with pytest.raises(CircuitError):
            compressive_slew_limit(
                np.zeros(5),
                np.zeros(5),
                np.zeros(5),
                max_step=0.0,
                dt=1e-12,
                hysteresis=0.1,
                corner=6e9,
                order=3,
            )
