"""Tests for the bench noise source and AC coupler."""

import numpy as np
import pytest

from repro.circuits import ACCoupler, GAUSSIAN_PP_SIGMA_RATIO, NoiseSource
from repro.errors import CircuitError
from repro.signals import Waveform


class TestNoiseSource:
    def test_gaussian_sigma_from_pp(self):
        source = NoiseSource(kind="gaussian", peak_to_peak=0.9, seed=1)
        record = source.record(2e-6, 1e-9)
        expected_sigma = 0.9 / GAUSSIAN_PP_SIGMA_RATIO
        assert record.rms() == pytest.approx(expected_sigma, rel=0.02)

    def test_uniform_bounds(self):
        source = NoiseSource(kind="uniform", peak_to_peak=0.6, seed=1)
        record = source.record(1e-6, 1e-9)
        assert record.values.max() <= 0.3
        assert record.values.min() >= -0.3

    def test_sine_amplitude_and_frequency(self):
        source = NoiseSource(
            kind="sine", peak_to_peak=0.4, bandwidth=10e6, seed=1
        )
        record = source.record(1e-6, 1e-9)
        assert record.peak_to_peak() == pytest.approx(0.4, rel=0.01)
        # 10 MHz over 1 us = 10 periods -> 20 zero crossings.
        from repro.signals import crossing_times

        crossings = crossing_times(record, 0.0)
        assert 18 <= crossings.size <= 22

    def test_zero_amplitude(self):
        source = NoiseSource(peak_to_peak=0.0, seed=1)
        record = source.record(1e-7, 1e-9)
        assert np.all(record.values == 0.0)

    def test_reproducible_with_seed(self):
        a = NoiseSource(seed=7).record(1e-7, 1e-9)
        b = NoiseSource(seed=7).record(1e-7, 1e-9)
        np.testing.assert_array_equal(a.values, b.values)

    def test_explicit_rng_wins(self):
        source = NoiseSource(seed=7)
        a = source.record(1e-7, 1e-9, rng=np.random.default_rng(3))
        b = source.record(1e-7, 1e-9, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.values, b.values)

    def test_rejects_unknown_kind(self):
        with pytest.raises(CircuitError):
            NoiseSource(kind="pink")

    def test_rejects_negative_pp(self):
        with pytest.raises(CircuitError):
            NoiseSource(peak_to_peak=-0.1)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(CircuitError):
            NoiseSource(bandwidth=0.0)

    def test_record_t0(self):
        record = NoiseSource(seed=1).record(1e-7, 1e-9, t0=-5e-8)
        assert record.t0 == pytest.approx(-5e-8)


class TestACCoupler:
    def test_adds_dc_level(self):
        coupler = ACCoupler(cutoff=1e3)
        flat = Waveform.constant(0.0, 1e-6, 1e-9)
        out = coupler.couple(0.75, flat)
        np.testing.assert_allclose(out.values, 0.75, atol=1e-9)

    def test_blocks_disturbance_dc(self):
        coupler = ACCoupler(cutoff=1e6)
        biased = Waveform.constant(0.3, 1e-4, 1e-8)
        out = coupler.couple(0.75, biased)
        # The disturbance's DC is blocked; output settles to dc_level.
        assert out.values[-1] == pytest.approx(0.75, abs=1e-3)

    def test_passes_fast_noise(self):
        coupler = ACCoupler(cutoff=1e4)
        sine = Waveform.from_function(
            lambda t: 0.2 * np.sin(2 * np.pi * 50e6 * t), 1e-6, 1e-9
        )
        out = coupler.couple(0.75, sine)
        assert (out - 0.75).amplitude() == pytest.approx(0.2, rel=0.05)

    def test_rejects_bad_cutoff(self):
        with pytest.raises(CircuitError):
            ACCoupler(cutoff=0.0)
