"""Tests for the reflective-stub (echo) element."""

import numpy as np
import pytest

from repro.analysis import peak_to_peak_jitter
from repro.circuits import ReflectiveStub
from repro.errors import CircuitError
from repro.jitter import jittered_prbs
from repro.signals import Waveform, synthesize_step


class TestConstruction:
    def test_defaults(self):
        stub = ReflectiveStub()
        assert stub.reflection == pytest.approx(0.15)
        assert stub.n_echoes == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"reflection": -0.1},
            {"reflection": 1.0},
            {"stub_delay": 0.0},
            {"n_echoes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(CircuitError):
            ReflectiveStub(**kwargs)


class TestEchoBehaviour:
    def test_zero_reflection_is_identity(self):
        wf = synthesize_step(1e-12)
        out = ReflectiveStub(reflection=0.0).process(wf)
        np.testing.assert_array_equal(out.values, wf.values)

    def test_echo_arrives_at_round_trip(self):
        wf = synthesize_step(1e-12, step_time=0.2e-9, t_after=2e-9)
        stub = ReflectiveStub(reflection=0.2, stub_delay=100e-12)
        out = stub.process(wf)
        # The echo is a negative-gamma copy of the step: the residual
        # flips from +gamma*A to -gamma*A at step + 200 ps.
        residual = out - wf
        echo_time = 0.2e-9 + 200e-12
        before = residual.slice_time(echo_time - 80e-12, echo_time - 40e-12)
        after = residual.slice_time(echo_time + 40e-12, echo_time + 80e-12)
        assert before.mean() == pytest.approx(0.2 * 0.4, rel=0.1)
        assert after.mean() == pytest.approx(-0.2 * 0.4, rel=0.1)

    def test_echo_amplitude_scales_with_gamma(self):
        wf = synthesize_step(1e-12, step_time=0.2e-9, t_after=2e-9)
        small = ReflectiveStub(reflection=0.1, stub_delay=100e-12).process(wf)
        large = ReflectiveStub(reflection=0.3, stub_delay=100e-12).process(wf)
        assert (large - wf).peak_to_peak() > 2.5 * (small - wf).peak_to_peak()

    def test_multiple_echoes_decay(self):
        wf = synthesize_step(1e-12, step_time=0.2e-9, t_after=3e-9)
        stub = ReflectiveStub(
            reflection=0.3, stub_delay=100e-12, n_echoes=3
        )
        out = stub.process(wf)
        residual = out - wf
        first = residual.slice_time(0.35e-9, 0.45e-9).peak_to_peak()
        second = residual.slice_time(0.55e-9, 0.65e-9).peak_to_peak()
        assert second < first

    def test_adds_deterministic_jitter_to_data(self):
        # An echo longer than one UI converts pattern into DDJ.
        wf = jittered_prbs(7, 400, 6.4e9, 1e-12)
        out = ReflectiveStub(
            reflection=0.25, stub_delay=130e-12
        ).process(wf)
        ui = 1 / 6.4e9
        assert peak_to_peak_jitter(out, ui) > peak_to_peak_jitter(
            wf, ui
        ) + 1e-12

    def test_deterministic_no_randomness(self):
        wf = jittered_prbs(7, 60, 6.4e9, 1e-12)
        stub = ReflectiveStub(reflection=0.2)
        a = stub.process(wf)
        b = stub.process(wf)
        np.testing.assert_array_equal(a.values, b.values)
