"""Tests for the transmission-line model."""

import numpy as np
import pytest

from repro.analysis import measure_delay
from repro.circuits import TransmissionLine
from repro.errors import CircuitError
from repro.signals import synthesize_nrz


@pytest.fixture(scope="module")
def nrz():
    return synthesize_nrz([0, 1, 1, 0, 1, 0, 0, 1] * 4, 2.4e9, 1e-12)


class TestTransmissionLine:
    def test_delay_applied(self, nrz):
        line = TransmissionLine(delay=33e-12, loss_db=0.0, dispersive=False)
        out = line.process(nrz)
        assert measure_delay(nrz, out).delay == pytest.approx(
            33e-12, abs=0.1e-12
        )

    def test_length_error_adds(self, nrz):
        line = TransmissionLine(
            delay=33e-12, length_error=4e-12, loss_db=0.0, dispersive=False
        )
        assert line.total_delay == pytest.approx(37e-12)
        out = line.process(nrz)
        assert measure_delay(nrz, out).delay == pytest.approx(
            37e-12, abs=0.1e-12
        )

    def test_loss_attenuates(self, nrz):
        line = TransmissionLine(delay=10e-12, loss_db=6.0, dispersive=False)
        out = line.process(nrz)
        assert out.amplitude() == pytest.approx(
            nrz.amplitude() * 10 ** (-6 / 20), rel=0.02
        )

    def test_gain_property(self):
        line = TransmissionLine(delay=0.0, loss_db=20.0)
        assert line.gain == pytest.approx(0.1)

    def test_zero_delay_passthrough(self, nrz):
        line = TransmissionLine(delay=0.0, loss_db=0.0)
        out = line.process(nrz)
        np.testing.assert_allclose(out.values, nrz.values)

    def test_dispersion_scales_with_length(self):
        short = TransmissionLine(delay=33e-12)
        long = TransmissionLine(delay=99e-12)
        assert long.bandwidth() < short.bandwidth()

    def test_dispersion_slows_edges(self, nrz):
        crisp = TransmissionLine(
            delay=99e-12, loss_db=0.0, dispersive=False
        ).process(nrz)
        soft = TransmissionLine(delay=99e-12, loss_db=0.0).process(
            nrz.resampled(0.25e-12)
        )
        max_slope_crisp = np.abs(np.diff(crisp.values)).max() / crisp.dt
        max_slope_soft = np.abs(np.diff(soft.values)).max() / soft.dt
        assert max_slope_soft < max_slope_crisp

    def test_passive_line_adds_no_jitter(self, nrz):
        # Identical runs produce identical outputs: no randomness.
        line = TransmissionLine(delay=33e-12)
        a = line.process(nrz)
        b = line.process(nrz)
        np.testing.assert_array_equal(a.values, b.values)

    def test_rejects_negative_delay(self):
        with pytest.raises(CircuitError):
            TransmissionLine(delay=-1e-12)

    def test_rejects_error_making_delay_negative(self):
        with pytest.raises(CircuitError):
            TransmissionLine(delay=1e-12, length_error=-2e-12)

    def test_rejects_negative_loss(self):
        with pytest.raises(CircuitError):
            TransmissionLine(delay=1e-12, loss_db=-1.0)

    def test_infinite_bandwidth_for_zero_length(self):
        line = TransmissionLine(delay=0.0)
        assert np.isinf(line.bandwidth())
