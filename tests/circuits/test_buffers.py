"""Tests for the fixed-amplitude output and fanout buffers."""

import numpy as np
import pytest

from repro.analysis import measure_delay
from repro.circuits import FanoutBuffer, OutputBuffer, VariableGainBuffer
from repro.errors import CircuitError
from repro.signals import synthesize_nrz


@pytest.fixture(scope="module")
def nrz():
    return synthesize_nrz([0, 1, 1, 0, 1, 0, 0, 1] * 4, 2.4e9, 1e-12)


class TestOutputBuffer:
    def test_restores_full_swing(self, nrz, rng):
        # A minimum-amplitude intermediate signal is restored to 0.4 V.
        small = VariableGainBuffer(vctrl=0.0, seed=1).process(nrz, rng)
        assert small.amplitude() < 0.15
        restored = OutputBuffer(amplitude=0.4, seed=2).process(small, rng)
        assert restored.amplitude() == pytest.approx(0.4, rel=0.05)

    def test_custom_amplitude(self, nrz, rng):
        out = OutputBuffer(amplitude=0.25, seed=2).process(nrz, rng)
        assert out.amplitude() == pytest.approx(0.25, rel=0.05)

    def test_amplitude_independent_of_input_swing(self, nrz, rng):
        big_in = OutputBuffer(seed=2).process(nrz, np.random.default_rng(1))
        small_in = OutputBuffer(seed=2).process(
            nrz * 0.3, np.random.default_rng(1)
        )
        assert big_in.amplitude() == pytest.approx(
            small_in.amplitude(), rel=0.03
        )

    def test_rejects_bad_amplitude(self):
        with pytest.raises(CircuitError):
            OutputBuffer(amplitude=0.0)

    def test_adds_propagation_delay(self, nrz, rng):
        out = OutputBuffer(seed=2).process(nrz, rng)
        delay = measure_delay(nrz, out).delay
        assert delay > 50e-12  # includes the 70 ps t_pd


class TestFanoutBuffer:
    def test_copies_count(self, nrz, rng):
        fanout = FanoutBuffer(n_outputs=4, seed=3)
        copies = fanout.copies(nrz, rng)
        assert len(copies) == 4

    def test_copies_are_nominally_aligned(self, nrz, rng):
        fanout = FanoutBuffer(n_outputs=4, seed=3)
        copies = fanout.copies(nrz, rng)
        for copy in copies[1:]:
            delay = measure_delay(copies[0], copy).delay
            assert abs(delay) < 2e-12

    def test_copies_have_independent_noise(self, nrz, rng):
        fanout = FanoutBuffer(n_outputs=2, seed=3)
        a, b = fanout.copies(nrz, rng)
        assert not np.array_equal(a.values, b.values)

    def test_process_returns_single_leg(self, nrz, rng):
        fanout = FanoutBuffer(n_outputs=4, seed=3)
        out = fanout.process(nrz, rng)
        assert out.amplitude() == pytest.approx(0.4, rel=0.05)

    def test_rejects_zero_outputs(self):
        with pytest.raises(CircuitError):
            FanoutBuffer(n_outputs=0)

    def test_rejects_bad_amplitude(self):
        with pytest.raises(CircuitError):
            FanoutBuffer(amplitude=-0.4)
