"""Tests for the N:1 multiplexer."""

import numpy as np
import pytest

from repro.analysis import measure_delay
from repro.circuits import Multiplexer
from repro.errors import CircuitError, ControlRangeError
from repro.signals import synthesize_nrz


@pytest.fixture(scope="module")
def nrz():
    return synthesize_nrz([0, 1, 1, 0, 1, 0, 0, 1] * 4, 2.4e9, 1e-12)


class TestSelect:
    def test_default_select_zero(self):
        assert Multiplexer().select == 0

    def test_select_setter(self):
        mux = Multiplexer()
        mux.select = 3
        assert mux.select == 3

    def test_select_out_of_range(self):
        mux = Multiplexer(n_inputs=4)
        with pytest.raises(ControlRangeError):
            mux.select = 4
        with pytest.raises(ControlRangeError):
            mux.select = -1

    def test_select_lines_lsb_first(self):
        mux = Multiplexer(n_inputs=4)
        mux.set_select_lines(1, 0)  # SEL0=1, SEL1=0 -> port 1
        assert mux.select == 1
        mux.set_select_lines(0, 1)  # port 2
        assert mux.select == 2
        mux.set_select_lines(1, 1)  # port 3
        assert mux.select == 3

    def test_select_lines_reject_non_bits(self):
        with pytest.raises(ControlRangeError):
            Multiplexer().set_select_lines(2, 0)


class TestConstruction:
    def test_rejects_single_input(self):
        with pytest.raises(CircuitError):
            Multiplexer(n_inputs=1)

    def test_rejects_bad_amplitude(self):
        with pytest.raises(CircuitError):
            Multiplexer(amplitude=0.0)

    def test_rejects_skew_length_mismatch(self):
        with pytest.raises(CircuitError):
            Multiplexer(n_inputs=4, port_skews=[0.0, 1e-12])


class TestSelection:
    def test_passes_selected_input(self, nrz, rng):
        # Selecting the 50 ps-shifted copy must move the output delay
        # by exactly that much relative to selecting the original.
        mux = Multiplexer(n_inputs=2, seed=5)
        inputs = [nrz, nrz.shifted(50e-12)]
        mux.select = 1
        shifted = measure_delay(nrz, mux.select_input(inputs, rng)).delay
        mux.select = 0
        original = measure_delay(nrz, mux.select_input(inputs, rng)).delay
        assert shifted - original == pytest.approx(50e-12, abs=2e-12)

    def test_select_input_wrong_count(self, nrz, rng):
        mux = Multiplexer(n_inputs=4, seed=5)
        with pytest.raises(CircuitError):
            mux.select_input([nrz, nrz], rng)

    def test_port_skew_applied(self, nrz, rng):
        mux_clean = Multiplexer(n_inputs=2, seed=5)
        mux_skewed = Multiplexer(
            n_inputs=2, port_skews=[5e-12, 0.0], seed=5
        )
        clean = mux_clean.process(nrz, np.random.default_rng(1))
        skewed = mux_skewed.process(nrz, np.random.default_rng(1))
        assert measure_delay(clean, skewed).delay == pytest.approx(
            5e-12, abs=1e-12
        )

    def test_output_amplitude(self, nrz, rng):
        out = Multiplexer(seed=5).process(nrz, rng)
        assert out.amplitude() == pytest.approx(0.4, rel=0.05)
