"""Tests for the Vctrl DAC model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import ControlDAC
from repro.errors import CircuitError, ControlRangeError


class TestIdealDac:
    def test_endpoints(self):
        dac = ControlDAC(n_bits=12, v_min=0.0, v_max=1.5)
        assert dac.voltage(0) == pytest.approx(0.0)
        assert dac.voltage(dac.n_codes - 1) == pytest.approx(1.5)

    def test_lsb(self):
        dac = ControlDAC(n_bits=12, v_min=0.0, v_max=1.5)
        assert dac.lsb == pytest.approx(1.5 / 4095)

    def test_linear_transfer(self):
        dac = ControlDAC(n_bits=8, v_min=0.0, v_max=1.0)
        assert dac.voltage(128) == pytest.approx(128 / 255)

    def test_code_for_voltage_nearest(self):
        dac = ControlDAC(n_bits=8, v_min=0.0, v_max=1.0)
        assert dac.code_for_voltage(0.5) in (127, 128)
        assert dac.code_for_voltage(dac.voltage(37)) == 37

    def test_code_for_voltage_clamps(self):
        dac = ControlDAC(n_bits=8)
        assert dac.code_for_voltage(-5.0) == 0
        assert dac.code_for_voltage(+5.0) == dac.n_codes - 1

    def test_quantize_error_bounded_by_lsb(self):
        dac = ControlDAC(n_bits=12, v_min=0.0, v_max=1.5)
        for v in np.linspace(0.0, 1.5, 97):
            assert abs(dac.quantize(v) - v) <= dac.lsb / 2 + 1e-12

    def test_zero_inl_when_ideal(self):
        dac = ControlDAC(n_bits=8)
        np.testing.assert_allclose(dac.inl_lsb(), 0.0, atol=1e-9)

    def test_code_out_of_range(self):
        dac = ControlDAC(n_bits=8)
        with pytest.raises(ControlRangeError):
            dac.voltage(256)
        with pytest.raises(ControlRangeError):
            dac.voltage(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_bits": 0},
            {"n_bits": 21},
            {"v_min": 1.0, "v_max": 0.5},
            {"dnl_lsb": -0.1},
        ],
    )
    def test_construction_validation(self, kwargs):
        with pytest.raises(CircuitError):
            ControlDAC(**kwargs)


class TestNonIdealDac:
    def test_transfer_still_monotone(self):
        dac = ControlDAC(n_bits=10, dnl_lsb=0.5, seed=3)
        voltages = [dac.voltage(c) for c in range(dac.n_codes)]
        assert all(b > a for a, b in zip(voltages, voltages[1:]))

    def test_endpoints_corrected(self):
        dac = ControlDAC(n_bits=10, v_min=0.0, v_max=1.5, dnl_lsb=0.5, seed=3)
        assert dac.voltage(0) == pytest.approx(0.0)
        assert dac.voltage(dac.n_codes - 1) == pytest.approx(1.5)

    def test_inl_nonzero(self):
        dac = ControlDAC(n_bits=10, dnl_lsb=0.5, seed=3)
        assert np.abs(dac.inl_lsb()).max() > 0.1

    def test_static_errors_fixed_per_instance(self):
        dac = ControlDAC(n_bits=10, dnl_lsb=0.5, seed=3)
        assert dac.voltage(123) == dac.voltage(123)

    def test_same_seed_same_part(self):
        a = ControlDAC(n_bits=10, dnl_lsb=0.5, seed=3)
        b = ControlDAC(n_bits=10, dnl_lsb=0.5, seed=3)
        assert a.voltage(511) == b.voltage(511)

    def test_round_trip_code_recovery(self):
        dac = ControlDAC(n_bits=10, dnl_lsb=0.3, seed=5)
        for code in (0, 1, 100, 511, 1023):
            assert dac.code_for_voltage(dac.voltage(code)) == code

    @given(st.integers(0, 4095))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, code):
        dac = ControlDAC(n_bits=12, dnl_lsb=0.4, seed=9)
        assert dac.code_for_voltage(dac.voltage(code)) == code
