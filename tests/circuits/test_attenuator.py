"""Tests for the series-resistor measurement pad."""

import numpy as np
import pytest

from repro.circuits import SeriesResistorPad
from repro.errors import CircuitError
from repro.signals import synthesize_nrz


class TestSeriesResistorPad:
    def test_equal_resistors_halve(self):
        pad = SeriesResistorPad(series_ohms=50.0, load_ohms=50.0)
        assert pad.gain == pytest.approx(0.5)
        assert pad.loss_db == pytest.approx(6.02, abs=0.02)

    def test_zero_series_is_transparent(self):
        pad = SeriesResistorPad(series_ohms=0.0)
        assert pad.gain == pytest.approx(1.0)
        assert pad.loss_db == pytest.approx(0.0)

    def test_processes_waveform(self):
        wf = synthesize_nrz([0, 1, 0, 1], 1e9, 1e-12)
        pad = SeriesResistorPad(series_ohms=50.0, load_ohms=50.0)
        out = pad.process(wf)
        np.testing.assert_allclose(out.values, 0.5 * wf.values)

    def test_preserves_timing(self):
        from repro.analysis import measure_delay

        wf = synthesize_nrz([0, 1, 0, 1, 1, 0], 1e9, 1e-12)
        out = SeriesResistorPad(series_ohms=100.0).process(wf)
        assert abs(measure_delay(wf, out).delay) < 0.1e-12

    def test_rejects_negative_series(self):
        with pytest.raises(CircuitError):
            SeriesResistorPad(series_ohms=-1.0)

    def test_rejects_nonpositive_load(self):
        with pytest.raises(CircuitError):
            SeriesResistorPad(load_ohms=0.0)
