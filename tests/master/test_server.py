"""End-to-end tests for the campaign master daemon.

The harness runs a real :class:`MasterServer` (own event loop in a
background thread, port 0) and drives it with the synchronous client
library over real sockets — the same path the CLI takes.  Campaign
specs use the test-tier point cost (~0.25 s: 48-bit records, 5
calibration points) so the daemon tests stay in CI budget.
"""

import asyncio
import threading

import pytest

from repro.errors import AuthError, MasterError, ReproError
from repro.master import (
    MasterClient,
    MasterScheduler,
    MasterServer,
    MasterWebSocket,
    TERMINAL_STATES,
)


def spec(name: str, seed: int = 11, rates=("2.4 Gbps", "4.8 Gbps")):
    return {
        "name": name,
        "scenario": "range",
        "seed": seed,
        "n_instances": 1,
        "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
        "sweeps": [{"name": "bit_rate", "values": list(rates)}],
    }


class Harness:
    """One live daemon: event loop thread + scheduler + server."""

    def __init__(self, data_dir, cache_dir, jobs: int = 1, token=None):
        self.data_dir = str(data_dir)
        self.cache_dir = str(cache_dir)
        self.jobs = jobs
        self.token = token
        self.loop = None
        self.thread = None
        self.server = None
        self.scheduler = None

    def start(self) -> MasterClient:
        ready = threading.Event()

        def run():
            self.loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self.loop)
            self.scheduler = MasterScheduler(
                self.data_dir, cache_dir=self.cache_dir, jobs=self.jobs
            )
            self.server = MasterServer(
                self.scheduler, port=0, token=self.token or ""
            )
            self.loop.run_until_complete(self.server.start())
            ready.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert ready.wait(10), "daemon failed to start"
        return MasterClient(
            port=self.server.port, timeout=120, token=self.token or ""
        )

    def stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        )
        future.result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture
def harness(tmp_path):
    h = Harness(tmp_path / "data", tmp_path / "cache")
    client = h.start()
    yield h, client
    h.stop()


def watch_to_end(client: MasterClient, rid: int):
    """Collect a run's full event stream; returns (events, final state)."""
    events = list(client.watch(rid))
    return events, events[-1]["state"]


class TestRest:
    def test_empty_status(self, harness):
        _, client = harness
        status = client.status()
        assert status["runs"] == []
        assert status["cache"] is not None  # harness always has a cache

    def test_unknown_run_is_404(self, harness):
        _, client = harness
        with pytest.raises(MasterError, match="no such run"):
            client.run(99)

    def test_unknown_route_rejected(self, harness):
        _, client = harness
        with pytest.raises(MasterError):
            client._request("GET", "/api/nothing")

    def test_bad_submit_body_rejected(self, harness):
        _, client = harness
        with pytest.raises(MasterError, match="'spec' object"):
            client._request("POST", "/api/submit", {"nope": 1})
        with pytest.raises(ReproError):
            client.submit({"name": "broken"})
        # Nothing was enqueued by the failed submissions.
        assert client.runs() == []

    def test_report_missing_until_done(self, harness):
        _, client = harness
        rid = client.submit(spec("rest-report", rates=["2.4 Gbps"]))
        record = client.run(rid)
        if record["state"] != "done":
            with pytest.raises(MasterError, match="no such run report"):
                client.report(rid)
        watch_to_end(client, rid)
        report = client.report(rid)
        assert report["schema"] == "repro.campaign-report"


class TestLifecycle:
    def test_submit_watch_done(self, harness):
        _, client = harness
        rid = client.submit(spec("lifecycle"))
        events, final = watch_to_end(client, rid)
        assert final == "done"
        progress = [e for e in events if e["type"] == "progress"]
        assert progress, "no live progress frames streamed"
        dones = [e["done"] for e in progress]
        assert dones == sorted(dones)
        assert progress[-1]["done"] == progress[-1]["total"] == 2
        # Progress frames carry instrument-counter deltas.
        assert any(e["counters"] for e in progress)
        record = client.run(rid)
        assert record["state"] == "done"
        assert record["counters"]["campaign.points.evaluated"] == 2

    def test_two_concurrent_websocket_clients(self, harness):
        """Two live WS sessions, two distinct campaigns, one daemon.

        Each client submits over its own socket and sees exactly its
        own run's stream (submissions auto-watch); the daemon serves
        both sessions concurrently while executing runs off the queue.
        """
        _, client = harness
        specs = [spec("ws-a", seed=1), spec("ws-b", seed=2)]
        results = [None, None]
        errors = []

        def session(index):
            try:
                with client.connect_ws() as ws:
                    rid = ws.submit(specs[index])
                    events = []
                    while True:
                        event = ws.next_event()
                        events.append(event)
                        if (
                            event.get("type") == "state"
                            and event.get("state") in TERMINAL_STATES
                        ):
                            break
                    results[index] = (rid, events)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=session, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(180)
        assert not errors
        assert all(results)
        (rid_a, events_a), (rid_b, events_b) = results
        assert rid_a != rid_b
        for rid, events in results:
            # Every event on this session is about this session's run.
            assert {e["rid"] for e in events} == {rid}
            assert events[-1]["state"] == "done"
            progress = [e for e in events if e["type"] == "progress"]
            assert progress and progress[-1]["done"] == 2

    def test_reports_are_stable_across_clients(self, harness):
        h, client = harness
        rid = client.submit(spec("stable", rates=["2.4 Gbps"]))
        watch_to_end(client, rid)
        other = MasterClient(port=h.server.port, timeout=120)
        assert client.report(rid) == other.report(rid)


class TestCancelResume:
    def test_cancel_mid_run_then_resubmit_hits_cache(self, harness):
        """The kill-resume loop: cancel at 18/20, resume from >=90% hits.

        The cancel lands while the runner is mid-point; point
        granularity means the in-flight point still completes and is
        cached, so the resubmission recomputes at most two points.
        """
        _, client = harness
        rates = [f"{r / 10:.1f} Gbps" for r in range(10, 30)]  # 20 points
        campaign = spec("cancelme", rates=rates)

        rid = client.submit(campaign)
        cancelled_at = None
        for event in client.watch(rid):
            if (
                event.get("type") == "progress"
                and event["done"] == 18
                and cancelled_at is None
            ):
                cancelled_at = event["done"]
                client.cancel(rid)
        assert cancelled_at == 18, "never saw the 18/20 progress frame"
        record = client.run(rid)
        assert record["state"] == "cancelled"
        assert "cancelled at" in record["error"]
        assert record["done"] < record["total"] == 20

        # Resubmit the identical spec: the shared cache finishes it.
        rid2 = client.submit(campaign)
        assert rid2 > rid
        events, final = watch_to_end(client, rid2)
        assert final == "done"
        record2 = client.run(rid2)
        hits = record2["counters"]["campaign.cache.hits"]
        misses = record2["counters"].get("campaign.cache.misses", 0)
        assert hits + misses == 20
        assert hits >= 18, f"expected >=90% cache hits, got {hits}/20"

    def test_cancel_queued_run_immediately(self, harness):
        h, client = harness
        # Occupy the scheduler, then cancel a run that is still queued.
        running = client.submit(spec("occupier"))
        queued = client.submit(spec("victim", seed=9))
        record = client.cancel(queued)
        assert record["state"] == "cancelled"
        events, final = watch_to_end(client, running)
        assert final == "done"
        # The cancelled run never ran: no started_at, nothing computed.
        victim = client.run(queued)
        assert victim["started_at"] is None
        assert victim["done"] == 0


class TestRestart:
    def test_rids_monotonic_across_restart(self, tmp_path):
        h = Harness(tmp_path / "data", tmp_path / "cache")
        client = h.start()
        try:
            rid = client.submit(spec("before", rates=["2.4 Gbps"]))
            watch_to_end(client, rid)
        finally:
            h.stop()

        # A new master over the same data dir: history intact, rids
        # strictly increasing, and the finished run's report fetchable.
        h2 = Harness(tmp_path / "data", tmp_path / "cache")
        client2 = h2.start()
        try:
            old = client2.run(rid)
            assert old["state"] == "done"
            assert client2.report(rid)["schema"] == "repro.campaign-report"
            rid2 = client2.submit(spec("after", rates=["4.8 Gbps"]))
            assert rid2 > rid
            _, final = watch_to_end(client2, rid2)
            assert final == "done"
        finally:
            h2.stop()

    def test_identical_resubmission_all_cache_hits(self, tmp_path):
        """A restart-resubmit of a finished spec is pure cache replay."""
        h = Harness(tmp_path / "data", tmp_path / "cache")
        client = h.start()
        campaign = spec("replay")
        try:
            rid = client.submit(campaign)
            watch_to_end(client, rid)
        finally:
            h.stop()

        h2 = Harness(tmp_path / "data", tmp_path / "cache")
        client2 = h2.start()
        try:
            rid2 = client2.submit(campaign)
            _, final = watch_to_end(client2, rid2)
            assert final == "done"
            record = client2.run(rid2)
            assert record["counters"]["campaign.cache.hits"] == 2
            assert "campaign.cache.misses" not in record["counters"]
        finally:
            h2.stop()


class TestSchedulerQueue:
    """Queue semantics that need no event loop or sockets."""

    def make(self, tmp_path) -> MasterScheduler:
        return MasterScheduler(tmp_path / "queue-data")

    def test_invalid_spec_rejected_before_rid_allocated(self, tmp_path):
        scheduler = self.make(tmp_path)
        with pytest.raises(ReproError):
            scheduler.submit({"name": "broken"})
        assert scheduler.store.next_rid() == 0

    def test_priority_order_ties_broken_by_rid(self, tmp_path):
        scheduler = self.make(tmp_path)
        low = scheduler.submit(spec("low"), priority=0)
        high_late = scheduler.submit(spec("h1"), priority=5)
        high_later = scheduler.submit(spec("h2"), priority=5)
        assert scheduler._next_queued().rid == high_late.rid
        scheduler.cancel(high_late.rid)
        assert scheduler._next_queued().rid == high_later.rid
        scheduler.cancel(high_later.rid)
        assert scheduler._next_queued().rid == low.rid

    def test_pause_holds_resume_releases(self, tmp_path):
        scheduler = self.make(tmp_path)
        record = scheduler.submit(spec("holdme"))
        scheduler.pause(record.rid)
        assert scheduler._next_queued() is None
        scheduler.resume(record.rid)
        assert scheduler._next_queued().rid == record.rid

    def test_pause_survives_restart(self, tmp_path):
        scheduler = self.make(tmp_path)
        record = scheduler.submit(spec("held"))
        scheduler.pause(record.rid)
        again = self.make(tmp_path)
        assert again.get(record.rid).state == "paused"

    def test_jobs_validated(self, tmp_path):
        with pytest.raises(MasterError, match="jobs must be"):
            MasterScheduler(tmp_path / "bad", jobs=0)

    def test_get_unknown_run(self, tmp_path):
        with pytest.raises(MasterError, match="no such run"):
            self.make(tmp_path).get(123)


class TestAuth:
    """Shared-secret (REPRO_MASTER_TOKEN) enforcement on every surface."""

    @pytest.fixture
    def secured(self, tmp_path):
        h = Harness(tmp_path / "data", tmp_path / "cache", token="s3cret")
        client = h.start()
        yield h, client
        h.stop()

    def test_rest_accepts_the_right_token(self, secured):
        _, client = secured
        assert client.status()["runs"] == []

    def test_rest_rejects_missing_token(self, secured):
        h, _ = secured
        anonymous = MasterClient(port=h.server.port, token="")
        with pytest.raises(AuthError, match="token"):
            anonymous.status()

    def test_rest_rejects_wrong_token(self, secured):
        h, _ = secured
        impostor = MasterClient(port=h.server.port, token="wr0ng")
        with pytest.raises(AuthError, match="authentication failed"):
            impostor.submit(spec("sneaky"))
        # The rejected submission never reached the scheduler.
        _, client = secured
        assert client.runs() == []

    def test_ws_rejects_wrong_token(self, secured):
        h, _ = secured
        with pytest.raises(AuthError, match="authentication failed"):
            MasterWebSocket(port=h.server.port, token="wr0ng")

    def test_ws_accepts_the_right_token(self, secured):
        h, client = secured
        with client.connect_ws() as ws:
            rid = ws.submit(spec("ws-auth", rates=["2.4 Gbps"]))
        events, state = watch_to_end(client, rid)
        assert state == "done"

    def test_client_reads_token_from_env(self, secured, monkeypatch):
        h, _ = secured
        monkeypatch.setenv("REPRO_MASTER_TOKEN", "s3cret")
        client = MasterClient(port=h.server.port)
        assert client.status()["runs"] is not None

    def test_unsecured_daemon_stays_open(self, harness):
        _, client = harness
        assert client.status()["runs"] == []
