"""Tests for run records, the state machine, and the persistent store."""

import json
import os

import pytest

from repro.errors import MasterError
from repro.master.state import (
    RUN_STATES,
    TERMINAL_STATES,
    RunRecord,
    RunStore,
)

SPEC = {"name": "s", "scenario": "range"}


def record(rid=0, **overrides) -> RunRecord:
    fields = dict(rid=rid, spec=dict(SPEC))
    fields.update(overrides)
    return RunRecord(**fields)


class TestStateMachine:
    def test_happy_path(self):
        run = record()
        assert run.state == "queued"
        run.transition("running")
        assert run.started_at is not None
        run.transition("done")
        assert run.terminal
        assert run.finished_at is not None

    def test_pause_resume_cycle(self):
        run = record()
        run.transition("paused")
        run.transition("queued")
        run.transition("cancelled")
        assert run.terminal

    @pytest.mark.parametrize(
        "path",
        [
            ("queued", "done"),  # must pass through running
            ("running", "paused"),  # running runs cannot be held
            ("done", "running"),  # terminal states are closed
            ("cancelled", "queued"),
            ("failed", "cancelled"),
        ],
    )
    def test_illegal_transitions_rejected(self, path):
        start, target = path
        run = record(state=start)
        with pytest.raises(MasterError, match="illegal transition"):
            run.transition(target)

    def test_unknown_state_rejected(self):
        with pytest.raises(MasterError, match="unknown run state"):
            record().transition("warp")

    def test_terminal_states_subset(self):
        assert TERMINAL_STATES < set(RUN_STATES)

    def test_roundtrip(self):
        run = record(rid=7, priority=3, total=10)
        run.transition("running")
        run.done = 4
        clone = RunRecord.from_dict(run.to_dict())
        assert clone.rid == 7
        assert clone.priority == 3
        assert clone.state == "running"
        assert clone.done == 4
        assert clone.spec == SPEC

    def test_wrong_schema_rejected(self):
        data = record().to_dict()
        data["schema"] = "something-else"
        with pytest.raises(MasterError, match="not a repro.master-run"):
            RunRecord.from_dict(data)


class TestRidCounter:
    def test_monotonic_within_store(self, tmp_path):
        store = RunStore(tmp_path)
        assert [store.allocate_rid() for _ in range(3)] == [0, 1, 2]

    def test_monotonic_across_restarts(self, tmp_path):
        """A new master never reuses a rid (the core restart invariant)."""
        first = RunStore(tmp_path)
        assert first.allocate_rid() == 0
        assert first.allocate_rid() == 1
        # Simulate a master restart: a fresh store over the same dir.
        second = RunStore(tmp_path)
        assert second.next_rid() == 2
        assert second.allocate_rid() == 2

    def test_counter_persists_before_return(self, tmp_path):
        store = RunStore(tmp_path)
        store.allocate_rid()
        with open(os.path.join(str(tmp_path), "next_rid")) as handle:
            assert handle.read().strip() == "1"

    def test_corrupt_counter_raises(self, tmp_path):
        store = RunStore(tmp_path)
        with open(os.path.join(str(tmp_path), "next_rid"), "w") as handle:
            handle.write("not-a-number")
        with pytest.raises(MasterError, match="corrupt rid counter"):
            store.next_rid()


class TestRunStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = RunStore(tmp_path)
        run = record(rid=store.allocate_rid(), priority=2, total=4)
        store.save(run)
        loaded = RunStore(tmp_path).load()
        assert set(loaded) == {run.rid}
        assert loaded[run.rid].priority == 2
        assert loaded[run.rid].state == "queued"

    def test_interrupted_running_run_marked_failed(self, tmp_path):
        store = RunStore(tmp_path)
        run = record(rid=store.allocate_rid())
        run.transition("running")
        store.save(run)

        reloaded = RunStore(tmp_path).load()[run.rid]
        assert reloaded.state == "failed"
        assert "interrupted by master restart" in reloaded.error
        # The reconciliation is itself persisted.
        again = RunStore(tmp_path).load()[run.rid]
        assert again.state == "failed"

    def test_queued_and_paused_survive_restart(self, tmp_path):
        store = RunStore(tmp_path)
        queued = record(rid=store.allocate_rid())
        paused = record(rid=store.allocate_rid())
        paused.transition("paused")
        store.save(queued)
        store.save(paused)
        loaded = RunStore(tmp_path).load()
        assert loaded[queued.rid].state == "queued"
        assert loaded[paused.rid].state == "paused"

    def test_corrupt_record_raises(self, tmp_path):
        store = RunStore(tmp_path)
        path = os.path.join(store.runs_dir, "0.json")
        with open(path, "w") as handle:
            handle.write("{nope")
        with pytest.raises(MasterError, match="corrupt run record"):
            RunStore(tmp_path).load()

    def test_missing_report_is_none(self, tmp_path):
        assert RunStore(tmp_path).load_report(5) is None

    def test_corrupt_report_raises(self, tmp_path):
        store = RunStore(tmp_path)
        path = os.path.join(store.reports_dir, "3.json")
        with open(path, "w") as handle:
            json.dump({"schema": "wrong"}, handle)
        with pytest.raises(Exception):
            store.load_report(3)

    def test_rids_listing(self, tmp_path):
        store = RunStore(tmp_path)
        for _ in range(3):
            store.save(record(rid=store.allocate_rid()))
        assert store.rids() == [0, 1, 2]
