"""Tests for the sans-io HTTP/WebSocket protocol layer."""

import asyncio
import io

import pytest

from repro.errors import MasterError
from repro.master.protocol import (
    MAX_FRAME_BYTES,
    OP_BINARY,
    OP_CLOSE,
    OP_PING,
    OP_TEXT,
    encode_frame,
    format_http_response,
    parse_frame,
    read_http_request,
    websocket_accept_key,
    websocket_client_handshake,
)


def roundtrip(opcode: int, payload: bytes, mask: bool):
    """Encode a frame, then parse it back from an in-memory stream."""
    stream = io.BytesIO(encode_frame(opcode, payload, mask=mask))

    def read_exactly(n: int) -> bytes:
        data = stream.read(n)
        if len(data) != n:
            raise MasterError("short read")
        return data

    return parse_frame(read_exactly)


class TestFraming:
    def test_small_text_roundtrip(self):
        opcode, payload = roundtrip(OP_TEXT, b'{"a": 1}', mask=True)
        assert opcode == OP_TEXT
        assert payload == b'{"a": 1}'

    def test_unmasked_server_frame_roundtrip(self):
        opcode, payload = roundtrip(OP_TEXT, b"event", mask=False)
        assert (opcode, payload) == (OP_TEXT, b"event")

    def test_16bit_length_roundtrip(self):
        # 126..65535 bytes uses the 2-byte extended length.
        payload = bytes(range(256)) * 10  # 2560 bytes
        assert roundtrip(OP_BINARY, payload, mask=True)[1] == payload

    def test_64bit_length_roundtrip(self):
        # >65535 bytes uses the 8-byte extended length.
        payload = b"\xab" * 70_000
        assert roundtrip(OP_BINARY, payload, mask=False)[1] == payload

    def test_boundary_125_and_126(self):
        for n in (125, 126, 65535, 65536):
            payload = b"x" * n
            assert roundtrip(OP_TEXT, payload, mask=True)[1] == payload

    def test_control_frames(self):
        assert roundtrip(OP_PING, b"hb", mask=True) == (OP_PING, b"hb")
        assert roundtrip(OP_CLOSE, b"", mask=False) == (OP_CLOSE, b"")

    def test_masked_frame_differs_on_wire(self):
        clear = encode_frame(OP_TEXT, b"secret", mask=False)
        masked = encode_frame(OP_TEXT, b"secret", mask=True)
        assert b"secret" in clear
        assert b"secret" not in masked

    def test_oversized_frame_rejected_by_encoder(self):
        with pytest.raises(MasterError, match="exceeds the"):
            encode_frame(
                OP_BINARY, b"\x00" * (MAX_FRAME_BYTES + 1), mask=False
            )

    def test_oversized_frame_rejected_by_parser(self):
        # Handcraft a header advertising an absurd payload length.
        header = bytes([0x80 | OP_BINARY, 127]) + (2**40).to_bytes(8, "big")
        stream = io.BytesIO(header)
        with pytest.raises(MasterError, match="exceeds the"):
            parse_frame(lambda n: stream.read(n))


class TestHandshake:
    def test_rfc6455_accept_vector(self):
        # The worked example from RFC 6455 section 1.3.
        assert (
            websocket_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_client_handshake_is_self_consistent(self):
        request, accept = websocket_client_handshake("/ws", "h:1")
        text = request.decode("latin-1")
        assert text.startswith("GET /ws HTTP/1.1\r\n")
        key = next(
            line.split(": ", 1)[1]
            for line in text.split("\r\n")
            if line.lower().startswith("sec-websocket-key")
        )
        assert websocket_accept_key(key) == accept


class TestHttp:
    def run(self, coro):
        return asyncio.run(coro)

    def parse(self, raw: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_http_request(reader)

        return self.run(go())

    def test_get_roundtrip(self):
        request = self.parse(
            b"GET /api/status HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/api/status"
        assert not request.wants_websocket

    def test_post_body(self):
        request = self.parse(
            b"POST /api/submit HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 9\r\n\r\n"
            b'{"a": 12}'
        )
        assert request.body == b'{"a": 12}'

    def test_upgrade_detected(self):
        request = self.parse(
            b"GET /ws HTTP/1.1\r\nHost: x\r\n"
            b"Upgrade: websocket\r\nConnection: Upgrade\r\n"
            b"Sec-WebSocket-Key: abc\r\n\r\n"
        )
        assert request.wants_websocket
        assert request.header("sec-websocket-key") == "abc"

    def test_clean_eof_is_none(self):
        assert self.parse(b"") is None

    def test_response_format(self):
        raw = format_http_response(200, "OK", b'{"x": 1}')
        text = raw.decode("latin-1")
        assert text.startswith("HTTP/1.1 200 OK\r\n")
        assert "Content-Length: 8" in text
        assert text.endswith('\r\n\r\n{"x": 1}')
