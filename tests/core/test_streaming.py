"""Streaming at the pipeline level: combined line, bus, observability.

The kernel-level contract lives in ``tests/kernels/test_streaming.py``;
here we cover the pipeline wiring above it: the combined
coarse+fine stream (dispersion filter state, mux skew, tap selection),
the ParallelBus delegation, and the ``stream.*`` counters and spans.
"""

import numpy as np
import pytest

from repro import instrument, kernels
from repro.ate import ParallelBus
from repro.core import CombinedDelayLine, FineDelayLine, calibration_stimulus
from repro.errors import CircuitError
from repro.signals.waveform import Waveform


@pytest.fixture(autouse=True)
def _restore_backend():
    backend = kernels.active_backend()
    yield
    kernels.set_backend(backend)


def _stimulus(n_bits=63, dt=1e-12):
    return calibration_stimulus(n_bits=n_bits, dt=dt)


def _chunks(waveform, fractions):
    n = len(waveform)
    bounds = [0] + [int(f * n) for f in fractions] + [n]
    return [
        Waveform(
            waveform.values[a:b].copy(),
            waveform.dt,
            waveform.t0 + waveform.dt * a,
        )
        for a, b in zip(bounds[:-1], bounds[1:])
    ]


def _silence_noise(line: CombinedDelayLine) -> None:
    """Zero every noise source in the combined pipeline — including the
    fine line's output stage, which carries its own noise parameters."""
    elements = [line.coarse.fanout, line.coarse.mux] + line.fine._elements()
    for element in elements:
        element.params = element.params.with_updates(noise_sigma=0.0)


# -- combined pipeline -------------------------------------------------------


@pytest.mark.parametrize("tap", (0, 2))
def test_combined_noiseless_stream_bit_exact(tap):
    """With every noise source silenced the streamed combined pipeline
    (fanout -> tap line -> mux -> fine cascade) is bit-exact against the
    monolithic path, dispersion filter state and all."""
    kernels.set_backend("python")
    stimulus = _stimulus()

    mono_line = CombinedDelayLine(seed=4)
    mono_line.select = tap
    _silence_noise(mono_line)
    mono = mono_line.process(stimulus)

    line = CombinedDelayLine(seed=4)
    line.select = tap
    _silence_noise(line)
    processor = line.open_stream()
    processor.prime(stimulus)
    outs = [processor.push(c) for c in _chunks(stimulus, (0.2, 0.55))]
    values = np.concatenate([o.values for o in outs])
    assert np.array_equal(values, mono.values)
    assert outs[0].t0 == mono.t0


def test_combined_noisy_primed_stream_split_invariant():
    """With noise on, the streamed combined output cannot reproduce the
    monolithic shared-generator draw order, but two different splits of
    the same record must agree exactly when both are primed."""
    kernels.set_backend("python")
    stimulus = _stimulus()

    def run(fractions):
        line = CombinedDelayLine(seed=17)
        line.select = 1
        processor = line.open_stream()
        processor.prime(stimulus)
        outs = [processor.push(c) for c in _chunks(stimulus, fractions)]
        return np.concatenate([o.values for o in outs])

    assert np.array_equal(run((0.5,)), run((0.11, 0.42, 0.9)))


def test_combined_stream_is_deterministic():
    kernels.set_backend("python")
    stimulus = _stimulus()

    def run():
        line = CombinedDelayLine(seed=23)
        return np.concatenate(
            [
                o.values
                for o in line.process_stream(_chunks(stimulus, (0.5,)))
            ]
        )

    assert np.array_equal(run(), run())


def test_combined_stream_applies_mux_port_skew():
    """The output time axis carries the selected tap's delay and the
    mux port skew exactly as the monolithic path does."""
    kernels.set_backend("python")
    stimulus = _stimulus(n_bits=8, dt=10e-12)
    for tap in (0, 3):
        mono_line = CombinedDelayLine(seed=2)
        mono_line.select = tap
        _silence_noise(mono_line)
        mono = mono_line.process(stimulus)
        line = CombinedDelayLine(seed=2)
        line.select = tap
        _silence_noise(line)
        out = line.open_stream().push(stimulus)
        assert out.t0 == mono.t0


# -- parallel bus ------------------------------------------------------------


def test_bus_stream_channel_matches_direct_line_stream():
    kernels.set_backend("python")
    stimulus = _stimulus(n_bits=16, dt=4e-12)
    bus = ParallelBus(n_channels=2, seed=6)
    chunks = _chunks(stimulus, (0.5,))

    via_bus = list(bus.stream_channel(1, iter(chunks)))
    direct = list(
        ParallelBus(n_channels=2, seed=6)
        .delay_lines[1]
        .process_stream(iter(chunks))
    )
    assert len(via_bus) == len(direct)
    for a, b in zip(via_bus, direct):
        assert np.array_equal(a.values, b.values)


def test_bus_stream_channel_requires_delay_lines():
    bus = ParallelBus(n_channels=2, with_delay_circuits=False, seed=1)
    with pytest.raises(CircuitError):
        list(bus.stream_channel(0, iter([])))


def test_bus_stream_channel_validates_index():
    bus = ParallelBus(n_channels=2, seed=1)
    with pytest.raises(CircuitError):
        list(bus.stream_channel(5, iter([])))


# -- observability -----------------------------------------------------------


def test_stream_counters_and_spans():
    stimulus = _stimulus(n_bits=16, dt=4e-12)
    chunks = _chunks(stimulus, (0.3, 0.7))
    line = FineDelayLine(n_stages=2, seed=0)
    with instrument.enabled_scope(reset=True) as registry:
        for _ in line.process_stream(iter(chunks)):
            pass
        snapshot = registry.snapshot()
    counters = snapshot["counters"]
    assert counters["stream.chunks"] == 3
    assert counters["stream.samples"] == len(stimulus)
    span_paths = set(snapshot["spans"])
    assert any("stream.chunk" in path for path in span_paths)
    assert any("stream.state_carry" in path for path in span_paths)


def test_prime_records_span():
    stimulus = _stimulus(n_bits=16, dt=4e-12)
    line = FineDelayLine(n_stages=2, seed=0)
    with instrument.enabled_scope(reset=True) as registry:
        processor = line.open_stream()
        processor.prime(stimulus)
        snapshot = registry.snapshot()
    assert any("stream.prime" in path for path in snapshot["spans"])
