"""Tests for the coarse delay selector (the paper's Sec. 3 circuit)."""

import numpy as np
import pytest

from repro.analysis import measure_delay
from repro.core import CoarseDelayLine
from repro.errors import CircuitError, ControlRangeError


class TestConstruction:
    def test_defaults(self):
        line = CoarseDelayLine()
        assert line.n_taps == 4
        assert line.step == pytest.approx(33e-12)

    def test_nominal_tap_delays(self):
        line = CoarseDelayLine()
        np.testing.assert_allclose(
            line.nominal_tap_delays(), [0.0, 33e-12, 66e-12, 99e-12]
        )

    def test_actual_includes_errors(self):
        line = CoarseDelayLine(tap_errors=(0.0, 1e-12, 0.0, 0.0))
        actual = line.actual_tap_delays()
        assert actual[1] == pytest.approx(34e-12)

    def test_default_errors_only_for_four_taps(self):
        line = CoarseDelayLine(n_taps=3, step=20e-12)
        assert line.tap_errors == (0.0, 0.0, 0.0)

    def test_rejects_bad_step(self):
        with pytest.raises(CircuitError):
            CoarseDelayLine(step=0.0)

    def test_rejects_single_tap(self):
        with pytest.raises(CircuitError):
            CoarseDelayLine(n_taps=1)

    def test_rejects_error_length_mismatch(self):
        with pytest.raises(CircuitError):
            CoarseDelayLine(tap_errors=(0.0, 1e-12))


class TestSelection:
    def test_select_round_trip(self):
        line = CoarseDelayLine()
        line.select = 2
        assert line.select == 2

    def test_select_lines(self):
        line = CoarseDelayLine()
        line.set_select_lines(1, 1)
        assert line.select == 3

    def test_select_out_of_range(self):
        line = CoarseDelayLine()
        with pytest.raises(ControlRangeError):
            line.select = 4


class TestBehaviour:
    def test_tap_delta_near_step(self, short_stimulus, rng):
        line = CoarseDelayLine(seed=2)
        outputs = line.process_all_taps(short_stimulus, rng)
        d0 = measure_delay(short_stimulus, outputs[0]).delay
        d1 = measure_delay(short_stimulus, outputs[1]).delay
        assert d1 - d0 == pytest.approx(33e-12, abs=4e-12)

    def test_paper_calibrated_taps(self, short_stimulus):
        # Default tap errors reproduce the paper's 0/33/70/95 ps.
        line = CoarseDelayLine(seed=2)
        outputs = line.process_all_taps(
            short_stimulus, np.random.default_rng(0)
        )
        delays = [measure_delay(short_stimulus, o).delay for o in outputs]
        relative = np.array(delays) - delays[0]
        np.testing.assert_allclose(
            relative, [0.0, 33e-12, 70e-12, 95e-12], atol=3e-12
        )

    def test_process_uses_selected_tap(self, short_stimulus):
        line = CoarseDelayLine(seed=2)
        line.select = 0
        out0 = line.process(short_stimulus, np.random.default_rng(1))
        line.select = 3
        out3 = line.process(short_stimulus, np.random.default_rng(1))
        delta = measure_delay(out0, out3).delay
        assert delta == pytest.approx(95e-12, abs=4e-12)

    def test_process_all_taps_restores_select(self, short_stimulus, rng):
        line = CoarseDelayLine(seed=2)
        line.select = 1
        line.process_all_taps(short_stimulus, rng)
        assert line.select == 1

    def test_output_full_swing(self, short_stimulus, rng):
        line = CoarseDelayLine(seed=2)
        out = line.process(short_stimulus, rng)
        assert out.amplitude() == pytest.approx(0.4, rel=0.08)
