"""Tests for the fast analytic event model."""

import math

import numpy as np
import pytest

from repro.analysis import measure_delay
from repro.core import EventDelayModel, FineDelayLine
from repro.errors import CircuitError


class TestStageFormulas:
    def test_stage_delay_monotone_in_vctrl(self):
        model = EventDelayModel()
        assert model.stage_delay(1.5) > model.stage_delay(0.0)

    def test_stage_delay_compresses_at_speed(self):
        model = EventDelayModel()
        assert model.stage_delay(1.5, half_period=78e-12) < model.stage_delay(
            1.5, half_period=math.inf
        )

    def test_low_amplitude_barely_compresses(self):
        model = EventDelayModel()
        slow = model.stage_delay(0.0, half_period=math.inf)
        fast = model.stage_delay(0.0, half_period=78e-12)
        assert fast == pytest.approx(slow, abs=1e-12)

    def test_total_delay_includes_all_stages(self):
        model = EventDelayModel(n_stages=4)
        total = model.total_delay(0.75)
        per_stage = model.stage_delay(0.75)
        output = model.output_stage_delay()
        assert total == pytest.approx(4 * per_stage + output)

    def test_tap_delays_added(self):
        model = EventDelayModel(tap_delays=[0.0, 33e-12])
        assert model.total_delay(0.75, tap=1) - model.total_delay(
            0.75, tap=0
        ) == pytest.approx(33e-12)

    def test_bad_tap_raises(self):
        model = EventDelayModel()
        with pytest.raises(CircuitError):
            model.total_delay(0.75, tap=1)

    def test_rejects_zero_stages(self):
        with pytest.raises(CircuitError):
            EventDelayModel(n_stages=0)

    def test_delay_range_positive(self):
        model = EventDelayModel()
        assert 30e-12 < model.delay_range() < 90e-12

    def test_rj_sigma_scale(self):
        # Predicted added jitter should be around a picosecond RMS.
        model = EventDelayModel()
        assert 0.2e-12 < model.rj_sigma() < 5e-12


class TestAgreementWithWaveformModel:
    def test_delay_agreement(self, short_stimulus):
        line = FineDelayLine(seed=11)
        model = EventDelayModel()
        for vctrl in (0.0, 0.75, 1.5):
            line.vctrl = vctrl
            out = line.process(short_stimulus, np.random.default_rng(2))
            measured = measure_delay(short_stimulus, out).delay
            predicted = model.total_delay(vctrl, half_period=1 / 2.4e9)
            assert predicted == pytest.approx(measured, abs=25e-12)

    def test_range_agreement(self, short_stimulus):
        line = FineDelayLine(seed=11)
        delays = {}
        for vctrl in (0.0, 1.5):
            line.vctrl = vctrl
            out = line.process(short_stimulus, np.random.default_rng(2))
            delays[vctrl] = measure_delay(short_stimulus, out).delay
        measured_range = delays[1.5] - delays[0.0]
        predicted_range = EventDelayModel().delay_range(
            half_period=1 / 2.4e9
        )
        assert predicted_range == pytest.approx(measured_range, rel=0.5)


class TestPropagateEdges:
    def test_uniform_edges_uniform_delay(self):
        model = EventDelayModel()
        times = 200e-12 * np.arange(20)
        out = model.propagate_edges(times, vctrl=0.75, add_jitter=False)
        delays = out - times
        np.testing.assert_allclose(delays[1:], delays[1], atol=1e-15)

    def test_first_edge_uses_settled_compression(self):
        model = EventDelayModel()
        times = 50e-12 * np.arange(10)  # 10 GHz toggling: compressed
        out = model.propagate_edges(times, vctrl=1.5, add_jitter=False)
        delays = out - times
        # The first edge (infinite preceding interval) is the slowest.
        assert delays[0] > delays[1]

    def test_jitter_reproducible(self):
        model = EventDelayModel()
        times = 200e-12 * np.arange(50)
        a = model.propagate_edges(
            times, 0.75, rng=np.random.default_rng(3)
        )
        b = model.propagate_edges(
            times, 0.75, rng=np.random.default_rng(3)
        )
        np.testing.assert_array_equal(a, b)

    def test_output_monotone(self):
        model = EventDelayModel()
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 10e-9, 200))
        out = model.propagate_edges(times, 0.75, rng=rng)
        assert np.all(np.diff(out) >= 0)

    def test_empty_input(self):
        model = EventDelayModel()
        assert model.propagate_edges(np.array([]), 0.75).size == 0

    def test_rejects_descending(self):
        model = EventDelayModel()
        with pytest.raises(CircuitError):
            model.propagate_edges(np.array([1e-9, 0.0]), 0.75)
