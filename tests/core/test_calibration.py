"""Tests for calibration tables and the combined-delay solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import ControlDAC
from repro.core import (
    CalibrationTable,
    CombinedDelaySolver,
    calibrate_fine_delay,
    calibration_stimulus,
    FineDelayLine,
)
from repro.errors import CalibrationError, DelayRangeError


def linear_table(delay_range=50e-12, n=11):
    return CalibrationTable(
        vctrls=np.linspace(0.0, 1.5, n),
        delays=np.linspace(0.0, delay_range, n),
    )


class TestCalibrationTable:
    def test_range(self):
        assert linear_table(50e-12).range == pytest.approx(50e-12)

    def test_forward_lookup(self):
        table = linear_table(50e-12)
        assert table.delay_for_vctrl(0.75) == pytest.approx(25e-12)

    def test_forward_lookup_clamps(self):
        table = linear_table(50e-12)
        assert table.delay_for_vctrl(-1.0) == pytest.approx(0.0)
        assert table.delay_for_vctrl(5.0) == pytest.approx(50e-12)

    def test_inverse_lookup(self):
        table = linear_table(50e-12)
        assert table.vctrl_for_delay(25e-12) == pytest.approx(0.75)

    def test_inverse_out_of_range(self):
        table = linear_table(50e-12)
        with pytest.raises(DelayRangeError):
            table.vctrl_for_delay(60e-12)
        with pytest.raises(DelayRangeError):
            table.vctrl_for_delay(-1e-12)

    def test_inverse_tolerance_clamps(self):
        table = linear_table(50e-12)
        assert table.vctrl_for_delay(
            51e-12, tolerance=2e-12
        ) == pytest.approx(1.5)

    def test_isotonic_cleanup(self):
        # A noisy dip is flattened so inversion stays well defined.
        table = CalibrationTable(
            vctrls=np.array([0.0, 0.5, 1.0, 1.5]),
            delays=np.array([0.0, 10e-12, 9e-12, 20e-12]),
        )
        assert np.all(np.diff(table.delays) >= 0)

    def test_slope_at(self):
        table = linear_table(50e-12)
        assert table.slope_at(0.75) == pytest.approx(50e-12 / 1.5)

    def test_rejects_single_point(self):
        with pytest.raises(CalibrationError):
            CalibrationTable(np.array([0.0]), np.array([0.0]))

    def test_rejects_descending_vctrl(self):
        with pytest.raises(CalibrationError):
            CalibrationTable(
                np.array([1.0, 0.0]), np.array([0.0, 1e-12])
            )

    def test_rejects_length_mismatch(self):
        with pytest.raises(CalibrationError):
            CalibrationTable(
                np.array([0.0, 1.0]), np.array([0.0, 1e-12, 2e-12])
            )

    @given(st.floats(min_value=0.0, max_value=50e-12))
    @settings(max_examples=50, deadline=None)
    def test_inverse_forward_round_trip(self, delay):
        table = linear_table(50e-12)
        vctrl = table.vctrl_for_delay(delay)
        assert table.delay_for_vctrl(vctrl) == pytest.approx(
            delay, abs=1e-16
        )


class TestCalibrateFineDelay:
    def test_builds_monotone_table(self, fine_table):
        assert np.all(np.diff(fine_table.delays) >= 0)

    def test_range_in_paper_regime(self, fine_table):
        assert 40e-12 <= fine_table.range <= 70e-12

    def test_restores_vctrl(self, short_stimulus):
        line = FineDelayLine(seed=50)
        line.vctrl = 0.6
        calibrate_fine_delay(line, stimulus=short_stimulus, n_points=3)
        assert line.vctrl == 0.6

    def test_rejects_too_few_points(self, short_stimulus):
        line = FineDelayLine(seed=50)
        with pytest.raises(CalibrationError):
            calibrate_fine_delay(line, stimulus=short_stimulus, n_points=1)

    def test_default_stimulus(self):
        stim = calibration_stimulus()
        assert stim.dt == pytest.approx(1e-12)
        assert stim.amplitude() == pytest.approx(0.4, rel=0.05)


class TestCombinedDelaySolver:
    def test_total_range(self):
        solver = CombinedDelaySolver(
            linear_table(50e-12), [0.0, 33e-12, 70e-12, 95e-12]
        )
        assert solver.total_range == pytest.approx(145e-12)

    def test_solve_prefers_largest_tap(self):
        solver = CombinedDelaySolver(
            linear_table(50e-12), [0.0, 33e-12, 70e-12, 95e-12]
        )
        setting = solver.solve(100e-12)
        assert setting.tap == 3

    def test_solve_prediction_matches_target(self):
        solver = CombinedDelaySolver(
            linear_table(50e-12), [0.0, 33e-12, 70e-12, 95e-12]
        )
        for target in (0.0, 20e-12, 50e-12, 90e-12, 140e-12):
            setting = solver.solve(target)
            assert setting.predicted_delay == pytest.approx(
                target, abs=1e-15
            )

    def test_solve_out_of_range(self):
        solver = CombinedDelaySolver(linear_table(50e-12), [0.0, 33e-12])
        with pytest.raises(DelayRangeError):
            solver.solve(200e-12)
        with pytest.raises(DelayRangeError):
            solver.solve(-1e-12)

    def test_rejects_uncoverable_gap(self):
        with pytest.raises(CalibrationError):
            CombinedDelaySolver(linear_table(20e-12), [0.0, 33e-12])

    def test_rejects_unsorted_taps(self):
        with pytest.raises(CalibrationError):
            CombinedDelaySolver(linear_table(50e-12), [0.0, 40e-12, 20e-12])

    def test_nonzero_first_tap_rebased(self):
        solver = CombinedDelaySolver(
            linear_table(50e-12), [10e-12, 43e-12]
        )
        assert solver.tap_delays[0] == 0.0
        assert solver.tap_delays[1] == pytest.approx(33e-12)

    def test_dac_quantization_reported(self):
        dac = ControlDAC(n_bits=12)
        solver = CombinedDelaySolver(
            linear_table(50e-12), [0.0, 33e-12], dac=dac
        )
        setting = solver.solve(40e-12)
        assert setting.dac_code is not None
        assert dac.voltage(setting.dac_code) == pytest.approx(setting.vctrl)

    def test_resolution_estimate_subps(self):
        solver = CombinedDelaySolver(
            linear_table(50e-12), [0.0], dac=ControlDAC(n_bits=12)
        )
        assert solver.resolution_estimate(0.75) < 1e-12

    def test_resolution_requires_dac(self):
        solver = CombinedDelaySolver(linear_table(50e-12), [0.0])
        with pytest.raises(CalibrationError):
            solver.resolution_estimate(0.75)

    @given(st.floats(min_value=0.0, max_value=145e-12))
    @settings(max_examples=50, deadline=None)
    def test_every_target_in_range_solvable(self, target):
        solver = CombinedDelaySolver(
            linear_table(50e-12), [0.0, 33e-12, 70e-12, 95e-12]
        )
        setting = solver.solve(target)
        assert setting.predicted_delay == pytest.approx(target, abs=1e-15)
        assert 0 <= setting.tap <= 3


class TestPersistence:
    def test_table_round_trip_dict(self):
        table = linear_table(50e-12)
        restored = CalibrationTable.from_dict(table.to_dict())
        np.testing.assert_allclose(restored.vctrls, table.vctrls)
        np.testing.assert_allclose(restored.delays, table.delays)

    def test_table_save_load(self, tmp_path):
        table = linear_table(42e-12)
        path = tmp_path / "table.json"
        table.save(path)
        restored = CalibrationTable.load(path)
        assert restored.range == pytest.approx(table.range)

    def test_table_rejects_bad_dict(self):
        with pytest.raises(CalibrationError):
            CalibrationTable.from_dict({"nope": []})

    def test_solver_round_trip(self, tmp_path):
        solver = CombinedDelaySolver(
            linear_table(50e-12), [0.0, 33e-12, 70e-12, 95e-12]
        )
        path = tmp_path / "solver.json"
        solver.save(path)
        restored = CombinedDelaySolver.load(path)
        assert restored.total_range == pytest.approx(solver.total_range)
        original = solver.solve(88e-12)
        recovered = restored.solve(88e-12)
        assert recovered.tap == original.tap
        assert recovered.vctrl == pytest.approx(original.vctrl)

    def test_solver_load_with_dac(self, tmp_path):
        solver = CombinedDelaySolver(linear_table(50e-12), [0.0, 33e-12])
        path = tmp_path / "solver.json"
        solver.save(path)
        restored = CombinedDelaySolver.load(path, dac=ControlDAC(n_bits=12))
        setting = restored.solve(40e-12)
        assert setting.dac_code is not None

    def test_solver_rejects_bad_dict(self):
        with pytest.raises(CalibrationError):
            CombinedDelaySolver.from_dict({"fine_table": {}})


class TestAtomicSaves:
    def test_save_leaves_no_temp_files(self, tmp_path):
        linear_table(42e-12).save(tmp_path / "table.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["table.json"]

    def test_overwrite_is_atomic_on_failure(self, tmp_path, monkeypatch):
        # A crash mid-write must leave the existing file intact and no
        # temp file behind.
        import json as json_module

        from repro.core import calibration as calibration_module

        path = tmp_path / "table.json"
        original = linear_table(42e-12)
        original.save(path)
        before = path.read_text()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(
            calibration_module.json, "dump", explode
        )
        with pytest.raises(OSError):
            linear_table(99e-12).save(path)
        assert path.read_text() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["table.json"]
        assert json_module.loads(before)["delays"][-1] == pytest.approx(
            42e-12
        )

    def test_solver_save_leaves_no_temp_files(self, tmp_path):
        solver = CombinedDelaySolver(linear_table(50e-12), [0.0, 33e-12])
        solver.save(tmp_path / "solver.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["solver.json"]


class TestBatchedSweep:
    def test_batch_matches_sequential(self, short_stimulus):
        line = FineDelayLine(seed=55)
        batched = calibrate_fine_delay(
            line,
            stimulus=short_stimulus,
            n_points=4,
            rng=np.random.default_rng(5),
            batch=True,
        )
        sequential = calibrate_fine_delay(
            line,
            stimulus=short_stimulus,
            n_points=4,
            rng=np.random.default_rng(5),
            batch=False,
        )
        np.testing.assert_array_equal(batched.vctrls, sequential.vctrls)
        # The numpy backend's batched limiter agrees with the
        # sequential walk to floating-point rounding; the measured
        # delays must match far inside the 0.01 ps delay contract.
        np.testing.assert_allclose(
            batched.delays, sequential.delays, rtol=0.0, atol=1e-14
        )

    def test_batch_bit_exact_on_python_backend(self):
        from repro.kernels import use_backend

        stimulus = calibration_stimulus(n_bits=16, dt=8e-12)
        with use_backend("python"):
            line = FineDelayLine(seed=55)
            batched = calibrate_fine_delay(
                line,
                stimulus=stimulus,
                n_points=3,
                rng=np.random.default_rng(5),
                batch=True,
            )
            sequential = calibrate_fine_delay(
                line,
                stimulus=stimulus,
                n_points=3,
                rng=np.random.default_rng(5),
                batch=False,
            )
        np.testing.assert_array_equal(batched.vctrls, sequential.vctrls)
        np.testing.assert_array_equal(batched.delays, sequential.delays)

    def test_sweep_restores_vctrl(self, short_stimulus):
        line = FineDelayLine(seed=56)
        saved = line.vctrl
        calibrate_fine_delay(
            line, stimulus=short_stimulus, n_points=3, batch=True
        )
        assert line.vctrl == saved
