"""Tests for the fine delay line (the paper's Sec. 2 circuit)."""

import numpy as np
import pytest

from repro.analysis import measure_delay
from repro.circuits import BufferParams
from repro.core import FineDelayLine, FOUR_STAGE_BUFFER
from repro.errors import CircuitError
from repro.signals import Waveform


class TestConstruction:
    def test_default_four_stages(self):
        line = FineDelayLine()
        assert line.n_stages == 4
        assert line.params is FOUR_STAGE_BUFFER

    def test_custom_stage_count(self):
        assert FineDelayLine(n_stages=2).n_stages == 2

    def test_rejects_zero_stages(self):
        with pytest.raises(CircuitError):
            FineDelayLine(n_stages=0)

    def test_stage_seeds_differ(self, short_stimulus):
        # Different stages draw different noise: two stages of the same
        # line produce different outputs for the same input.
        line = FineDelayLine(n_stages=2, seed=5)
        a = line.stages[0].process(short_stimulus)
        b = line.stages[1].process(short_stimulus)
        assert not np.array_equal(a.values, b.values)

    def test_reproducible_given_seed(self, short_stimulus):
        a = FineDelayLine(seed=9).process(short_stimulus)
        b = FineDelayLine(seed=9).process(short_stimulus)
        np.testing.assert_array_equal(a.values, b.values)


class TestCommonControl:
    def test_vctrl_fans_out_to_all_stages(self):
        line = FineDelayLine()
        line.vctrl = 1.2
        assert all(v == 1.2 for v in line.stage_vctrls())

    def test_per_stage_override(self):
        line = FineDelayLine()
        line.vctrl = 0.5
        line.set_stage_vctrl(2, 1.0)
        vctrls = line.stage_vctrls()
        assert vctrls[2] == 1.0
        assert vctrls[0] == 0.5

    def test_vctrl_getter_returns_stage0(self):
        line = FineDelayLine(vctrl=0.6)
        assert line.vctrl == 0.6


class TestBehaviour:
    def test_output_full_swing_at_any_vctrl(self, short_stimulus, rng):
        line = FineDelayLine(seed=3)
        for vctrl in (0.0, 0.75, 1.5):
            line.vctrl = vctrl
            out = line.process(short_stimulus, rng)
            assert out.amplitude() == pytest.approx(0.4, rel=0.08)

    def test_delay_monotone_in_vctrl(self, short_stimulus):
        line = FineDelayLine(seed=3)
        delays = []
        for vctrl in np.linspace(0.0, 1.5, 5):
            line.vctrl = float(vctrl)
            out = line.process(short_stimulus, np.random.default_rng(1))
            delays.append(measure_delay(short_stimulus, out).delay)
        assert all(b > a - 0.5e-12 for a, b in zip(delays, delays[1:]))

    def test_range_matches_paper_scale(self, short_stimulus):
        line = FineDelayLine(seed=3)
        line.vctrl = 0.0
        low = line.process(short_stimulus, np.random.default_rng(1))
        line.vctrl = 1.5
        high = line.process(short_stimulus, np.random.default_rng(1))
        delay_range = measure_delay(low, high).delay
        assert 40e-12 <= delay_range <= 70e-12

    def test_two_stage_has_half_range(self, short_stimulus):
        ranges = {}
        for n in (2, 4):
            line = FineDelayLine(n_stages=n, seed=3)
            line.vctrl = 0.0
            low = line.process(short_stimulus, np.random.default_rng(1))
            line.vctrl = 1.5
            high = line.process(short_stimulus, np.random.default_rng(1))
            ranges[n] = measure_delay(low, high).delay
        assert ranges[2] == pytest.approx(ranges[4] / 2, rel=0.25)


class TestNominalEstimates:
    def test_nominal_delay_monotone(self):
        line = FineDelayLine()
        assert line.nominal_delay(1.5) > line.nominal_delay(0.0)

    def test_nominal_range_positive(self):
        line = FineDelayLine()
        assert line.nominal_range() > 30e-12

    def test_nominal_range_compresses_at_speed(self):
        line = FineDelayLine()
        assert line.nominal_range(half_period=78e-12) < line.nominal_range()

    def test_nominal_within_2x_of_measured(self, short_stimulus):
        line = FineDelayLine(seed=3)
        line.vctrl = 0.75
        out = line.process(short_stimulus, np.random.default_rng(1))
        measured = measure_delay(short_stimulus, out).delay
        nominal = line.nominal_delay(0.75)
        assert nominal == pytest.approx(measured, rel=0.5)
