"""Tests for the calibrated parameter sets."""

import math

import pytest

from repro.core import (
    COARSE_STEP,
    COARSE_TAP_ERRORS,
    DEFAULT_FINE_STAGES,
    FOUR_STAGE_BUFFER,
    IDEAL_WIDEBAND_BUFFER,
    TWO_STAGE_BUFFER,
)


class TestParameterSets:
    def test_paper_amplitude_range(self):
        # The paper's part: 100-750 mV amplitude over a 1.5 V control.
        assert FOUR_STAGE_BUFFER.amplitude_min == pytest.approx(0.10)
        assert FOUR_STAGE_BUFFER.amplitude_max == pytest.approx(0.75)
        assert FOUR_STAGE_BUFFER.vctrl_max == pytest.approx(1.5)

    def test_per_stage_range_near_paper(self):
        # (A_max - A_min) / SR should be in the ~10-15 ps regime the
        # paper reports per buffer.
        per_stage = (
            FOUR_STAGE_BUFFER.amplitude_max - FOUR_STAGE_BUFFER.amplitude_min
        ) / FOUR_STAGE_BUFFER.slew_rate
        assert 8e-12 <= per_stage <= 16e-12

    def test_four_stages_default(self):
        assert DEFAULT_FINE_STAGES == 4

    def test_two_stage_part_is_slower_at_speed(self):
        # Lower compression corner: more compression at 6 GHz toggling.
        half_period = 1 / (2 * 6e9)
        assert TWO_STAGE_BUFFER.compression_factor(
            half_period
        ) < FOUR_STAGE_BUFFER.compression_factor(half_period)

    def test_ideal_part_never_compresses(self):
        assert IDEAL_WIDEBAND_BUFFER.compression_factor(
            1e-12
        ) == pytest.approx(1.0)

    def test_coarse_step_is_33ps(self):
        assert COARSE_STEP == pytest.approx(33e-12)

    def test_tap_errors_are_few_ps(self):
        assert len(COARSE_TAP_ERRORS) == 4
        assert all(abs(e) < 10e-12 for e in COARSE_TAP_ERRORS)

    def test_parameter_sets_frozen(self):
        with pytest.raises(Exception):
            FOUR_STAGE_BUFFER.slew_rate = 1.0

    def test_compression_factor_at_dc(self):
        assert FOUR_STAGE_BUFFER.compression_factor(math.inf) == pytest.approx(
            1.0
        )
