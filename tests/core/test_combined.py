"""Tests for the combined coarse+fine delay circuit."""

import numpy as np
import pytest

from repro.analysis import measure_delay
from repro.circuits import ControlDAC
from repro.core import CombinedDelayLine
from repro.errors import CalibrationError, DelayRangeError


class TestControlSurface:
    def test_select_delegates(self):
        line = CombinedDelayLine(seed=1)
        line.select = 2
        assert line.coarse.select == 2

    def test_vctrl_delegates(self):
        line = CombinedDelayLine(seed=1)
        line.vctrl = 1.1
        assert all(v == 1.1 for v in line.fine.stage_vctrls())

    def test_params_exposes_fine_params(self):
        line = CombinedDelayLine(seed=1)
        assert line.params is line.fine.params

    def test_uncalibrated_set_delay_raises(self):
        line = CombinedDelayLine(seed=1)
        with pytest.raises(CalibrationError):
            line.set_delay(50e-12)

    def test_uncalibrated_total_range_raises(self):
        line = CombinedDelayLine(seed=1)
        with pytest.raises(CalibrationError):
            _ = line.total_range


class TestCalibratedBehaviour:
    def test_total_range_exceeds_requirement(self, calibrated_combined):
        assert calibrated_combined.total_range >= 120e-12

    def test_set_delay_applies_controls(self, calibrated_combined):
        setting = calibrated_combined.set_delay(77e-12)
        assert calibrated_combined.select == setting.tap
        assert calibrated_combined.vctrl == setting.vctrl

    def test_set_delay_out_of_range(self, calibrated_combined):
        with pytest.raises(DelayRangeError):
            calibrated_combined.set_delay(1e-9)

    def test_programmed_delay_achieved(
        self, calibrated_combined, short_stimulus
    ):
        rng = np.random.default_rng(4)
        calibrated_combined.set_delay(0.0)
        base = measure_delay(
            short_stimulus,
            calibrated_combined.process(short_stimulus, rng),
        ).delay
        calibrated_combined.set_delay(88e-12)
        achieved = (
            measure_delay(
                short_stimulus,
                calibrated_combined.process(short_stimulus, rng),
            ).delay
            - base
        )
        assert achieved == pytest.approx(88e-12, abs=6e-12)

    def test_insertion_delay_scale(self, calibrated_combined, short_stimulus):
        # 7 active stages: ~390 ps of fixed propagation plus dynamics.
        calibrated_combined.set_delay(0.0)
        out = calibrated_combined.process(
            short_stimulus, np.random.default_rng(4)
        )
        insertion = measure_delay(short_stimulus, out).delay
        assert 0.4e-9 < insertion < 0.8e-9

    def test_dac_settings_round_trip(self, short_stimulus):
        line = CombinedDelayLine(dac=ControlDAC(seed=1), seed=5)
        line.calibrate(stimulus=short_stimulus, n_points=7)
        setting = line.set_delay(60e-12)
        assert setting.dac_code is not None
        assert setting.predicted_delay == pytest.approx(60e-12, abs=1e-12)

    def test_calibrate_restores_controls(self, short_stimulus):
        line = CombinedDelayLine(seed=6)
        line.select = 2
        line.vctrl = 0.9
        line.calibrate(stimulus=short_stimulus, n_points=5)
        assert line.select == 2
        assert line.vctrl == 0.9


class TestVerifyCalibration:
    def test_errors_small_after_calibration(
        self, calibrated_combined, short_stimulus
    ):
        errors = calibrated_combined.verify_calibration(
            stimulus=short_stimulus, rng=np.random.default_rng(8)
        )
        assert len(errors) == 3
        assert max(abs(e) for e in errors) < 5e-12

    def test_custom_targets(self, calibrated_combined, short_stimulus):
        errors = calibrated_combined.verify_calibration(
            targets=[20e-12, 100e-12],
            stimulus=short_stimulus,
            rng=np.random.default_rng(8),
        )
        assert len(errors) == 2

    def test_restores_controls(self, calibrated_combined, short_stimulus):
        calibrated_combined.select = 2
        calibrated_combined.vctrl = 0.9
        calibrated_combined.verify_calibration(
            targets=[30e-12],
            stimulus=short_stimulus,
            rng=np.random.default_rng(8),
        )
        assert calibrated_combined.select == 2
        assert calibrated_combined.vctrl == 0.9

    def test_requires_calibration(self):
        from repro.core import CombinedDelayLine

        line = CombinedDelayLine(seed=1)
        with pytest.raises(CalibrationError):
            line.verify_calibration()
