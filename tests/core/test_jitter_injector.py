"""Tests for the jitter injector (paper Sec. 5)."""

import numpy as np
import pytest

from repro.analysis import peak_to_peak_jitter, rms_jitter
from repro.circuits import NoiseSource
from repro.core import FineDelayLine, JitterInjector
from repro.errors import CircuitError
from repro.experiments.common import steady_state
from repro.jitter import jittered_prbs


BIT_RATE = 3.2e9


@pytest.fixture(scope="module")
def stimulus():
    return jittered_prbs(7, 254, BIT_RATE, 1e-12)


class TestConstruction:
    def test_defaults(self):
        injector = JitterInjector(seed=1)
        assert injector.dc_vctrl == 0.75
        assert injector.noise.peak_to_peak == pytest.approx(0.9)

    def test_rejects_dc_outside_range(self):
        with pytest.raises(CircuitError):
            JitterInjector(dc_vctrl=3.0, seed=1)


class TestVctrlRecord:
    def test_covers_signal_span_with_margin(self, stimulus, rng):
        injector = JitterInjector(seed=1)
        record = injector.vctrl_record(stimulus, rng, margin=2e-9)
        assert record.t0 <= stimulus.t0 - 1.9e-9
        assert record.t_end >= stimulus.t_end + 1.9e-9

    def test_centred_on_dc(self, stimulus, rng):
        injector = JitterInjector(dc_vctrl=0.6, seed=1)
        # The record is short relative to the noise correlation time,
        # so its mean wanders by a few tens of millivolts.
        record = injector.vctrl_record(stimulus, rng)
        assert record.mean() == pytest.approx(0.6, abs=0.06)

    def test_zero_noise_is_flat(self, stimulus, rng):
        injector = JitterInjector(
            noise=NoiseSource(peak_to_peak=0.0), seed=1
        )
        record = injector.vctrl_record(stimulus, rng)
        assert record.peak_to_peak() == pytest.approx(0.0, abs=1e-12)


class TestInjection:
    def test_noise_increases_jitter(self, stimulus):
        line = FineDelayLine(seed=3)
        ui = 1 / BIT_RATE
        quiet_line = FineDelayLine(seed=3)
        quiet_line.vctrl = 0.75
        quiet = quiet_line.process(stimulus, np.random.default_rng(1))
        injector = JitterInjector(
            delay_line=line,
            noise=NoiseSource(peak_to_peak=0.9, seed=4),
            seed=5,
        )
        noisy = injector.process(stimulus, np.random.default_rng(1))
        tj_quiet = peak_to_peak_jitter(steady_state(quiet), ui)
        tj_noisy = peak_to_peak_jitter(steady_state(noisy), ui)
        assert tj_noisy > tj_quiet + 10e-12

    def test_injection_scales_with_amplitude(self, stimulus):
        ui = 1 / BIT_RATE
        sigmas = []
        for pp in (0.3, 0.9):
            injector = JitterInjector(
                delay_line=FineDelayLine(seed=3),
                noise=NoiseSource(peak_to_peak=pp, seed=4),
                seed=5,
            )
            out = injector.process(stimulus, np.random.default_rng(1))
            sigmas.append(rms_jitter(steady_state(out), ui))
        assert sigmas[1] > 2 * sigmas[0]

    def test_restores_vctrl(self, stimulus, rng):
        line = FineDelayLine(seed=3)
        line.vctrl = 0.42
        injector = JitterInjector(delay_line=line, seed=5)
        injector.process(stimulus, rng)
        assert line.vctrl == 0.42


class TestPredictions:
    def test_injection_gain_positive(self, fine_table):
        injector = JitterInjector(seed=1)
        assert injector.injection_gain(fine_table) > 0

    def test_predicted_pp_scale(self, fine_table):
        injector = JitterInjector(
            noise=NoiseSource(peak_to_peak=0.9), seed=1
        )
        predicted = injector.predicted_injected_pp(fine_table)
        # Paper: ~41 ps injected at 900 mV; the small-signal slope
        # prediction overestimates somewhat (the real modulation is
        # attenuated by amplitude settling), so allow a wide band.
        assert 20e-12 < predicted < 130e-12
