"""Tests for repro.units: constants, parsing, formatting."""

import math

import pytest

from repro import units
from repro.errors import UnitError


class TestConstants:
    def test_time_constants_ratio(self):
        assert units.PS == pytest.approx(1000 * units.FS)
        assert units.NS == pytest.approx(1000 * units.PS)
        assert units.US == pytest.approx(1000 * units.NS)
        assert units.MS == pytest.approx(1000 * units.US)
        assert units.S == pytest.approx(1000 * units.MS)

    def test_voltage_constants(self):
        assert units.MV == 1e-3
        assert units.UV == 1e-6
        assert units.V == 1.0

    def test_frequency_constants(self):
        assert units.GHZ == 1e9
        assert units.MHZ == 1e6
        assert units.KHZ == 1e3

    def test_rate_constants(self):
        assert units.GBPS == 1e9
        assert units.MBPS == 1e6

    def test_example_paper_quantities(self):
        # The paper's bit period at 6.4 Gbps is ~156 ps.
        assert 1.0 / (6.4 * units.GBPS) == pytest.approx(156.25 * units.PS)


class TestParseQuantity:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("33ps", 33e-12),
            ("33 ps", 33e-12),
            ("6.4 Gbps", 6.4e9),
            ("750 mV", 0.75),
            ("1.5V", 1.5),
            ("100fs", 1e-13),
            ("2.6GHz", 2.6e9),
            ("50 Ohm", 50.0),
            ("-5 ps", -5e-12),
            ("1e2 ps", 1e-10),
            ("12 ns", 12e-9),
            ("3 us", 3e-6),
            ("7 µV", 7e-6),
        ],
    )
    def test_parses(self, text, expected):
        assert units.parse_quantity(text) == pytest.approx(expected)

    def test_dimension_check_passes(self):
        assert units.parse_quantity("33ps", expect="time") == pytest.approx(
            33e-12
        )

    def test_dimension_check_fails(self):
        with pytest.raises(UnitError):
            units.parse_quantity("33ps", expect="voltage")

    @pytest.mark.parametrize(
        "bad", ["", "ps", "33", "33 parsecs", "fast", "3..3 ps"]
    )
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitError):
            units.parse_quantity(bad)


class TestFormatting:
    def test_format_time_picoseconds(self):
        assert units.format_time(33e-12) == "33.0 ps"

    def test_format_time_nanoseconds(self):
        assert units.format_time(1.5e-9) == "1.5 ns"

    def test_format_time_femtoseconds(self):
        assert units.format_time(2.87e-13, digits=0) == "287 fs"

    def test_format_time_zero(self):
        assert units.format_time(0.0) == "0 s"

    def test_format_time_negative(self):
        assert units.format_time(-33e-12) == "-33.0 ps"

    def test_format_time_nonfinite(self):
        assert "inf" in units.format_time(math.inf)

    def test_format_voltage(self):
        assert units.format_voltage(0.75) == "750.0 mV"

    def test_format_frequency(self):
        assert units.format_frequency(6.4e9) == "6.40 GHz"

    def test_format_rate(self):
        assert units.format_rate(6.4e9) == "6.40 Gbps"

    def test_round_trip_parse_format(self):
        value = units.parse_quantity("95 ps")
        assert units.format_time(value) == "95.0 ps"


class TestParseFormatRoundTrips:
    """format_* output must parse back to the same SI value."""

    @pytest.mark.parametrize(
        "value", [33e-12, 1.5e-9, 2.87e-13, -33e-12, 95e-12]
    )
    def test_time_round_trip(self, value):
        text = units.format_time(value, digits=3)
        assert units.parse_quantity(text, expect="time") == pytest.approx(
            value
        )

    @pytest.mark.parametrize("value", [0.75, 1.5, 100e-3, 7e-6])
    def test_voltage_round_trip(self, value):
        text = units.format_voltage(value, digits=3)
        assert units.parse_quantity(text, expect="voltage") == pytest.approx(
            value
        )

    @pytest.mark.parametrize("value", [6.4e9, 2.4e9, 100e6])
    def test_rate_round_trip(self, value):
        text = units.format_rate(value)
        assert units.parse_quantity(text, expect="rate") == pytest.approx(
            value
        )

    @pytest.mark.parametrize("value", [6.4e9, 2.6e9, 50e6])
    def test_frequency_round_trip(self, value):
        text = units.format_frequency(value)
        assert units.parse_quantity(
            text, expect="frequency"
        ) == pytest.approx(value)


class TestParseWhitespaceAndCase:
    @pytest.mark.parametrize(
        "text", ["33 ps", "33ps", "  33 ps  ", "33\tps", " 33ps"]
    )
    def test_whitespace_variants_parse(self, text):
        assert units.parse_quantity(text) == pytest.approx(33e-12)

    def test_units_are_case_sensitive(self):
        # SI case matters: "mV" is millivolts, "MV" is megavolts.
        assert units.parse_quantity("1 mV") == pytest.approx(1e-3)
        assert units.parse_quantity("1 MV") == pytest.approx(1e6)

    @pytest.mark.parametrize("bad", ["33 PS", "33 pS", "6.4 GBPS", "1 v"])
    def test_wrong_case_units_are_rejected(self, bad):
        with pytest.raises(UnitError):
            units.parse_quantity(bad)

    def test_k_prefix_accepts_both_cases(self):
        assert units.parse_quantity("1 kHz") == units.parse_quantity("1 KHz")


class TestParseErrorPaths:
    @pytest.mark.parametrize(
        "bad",
        ["33 ps extra", "ps 33", "1/0 ps", "33 p s", "1e ps", "++3 ps"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(UnitError):
            units.parse_quantity(bad)

    def test_error_message_names_the_input(self):
        with pytest.raises(UnitError, match="33 parsecs"):
            units.parse_quantity("33 parsecs")

    @pytest.mark.parametrize(
        "text,wrong",
        [
            ("6.4 Gbps", "frequency"),
            ("6.4 GHz", "rate"),
            ("750 mV", "time"),
            ("33 ps", "resistance"),
        ],
    )
    def test_dimension_mismatch_names_both(self, text, wrong):
        with pytest.raises(UnitError, match=wrong):
            units.parse_quantity(text, expect=wrong)


class TestUiConversions:
    def test_ui_from_rate(self):
        assert units.ui_from_rate(6.4e9) == pytest.approx(156.25e-12)

    def test_rate_from_ui(self):
        assert units.rate_from_ui(156.25e-12) == pytest.approx(6.4e9)

    def test_round_trip(self):
        assert units.rate_from_ui(units.ui_from_rate(4.8e9)) == pytest.approx(
            4.8e9
        )

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(UnitError):
            units.ui_from_rate(0.0)

    def test_rejects_nonpositive_ui(self):
        with pytest.raises(UnitError):
            units.rate_from_ui(-1e-12)
