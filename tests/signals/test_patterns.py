"""Tests for bit-pattern generation, including PRBS LFSR properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatternError
from repro.signals import (
    PRBS_TAPS,
    alternating_bits,
    bits_from_string,
    clock_bits,
    k28_5_bits,
    prbs_period,
    prbs_sequence,
    random_bits,
    repeat_to_length,
    run_lengths,
)


class TestPrbsSequence:
    @pytest.mark.parametrize("order", sorted(PRBS_TAPS))
    def test_values_are_bits(self, order):
        bits = prbs_sequence(order, 200)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_period_length(self):
        assert prbs_period(7) == 127
        assert prbs_period(15) == 32767

    def test_prbs7_repeats_with_period_127(self):
        bits = prbs_sequence(7, 3 * 127)
        np.testing.assert_array_equal(bits[:127], bits[127:254])
        np.testing.assert_array_equal(bits[:127], bits[254:])

    def test_prbs7_is_balanced(self):
        # A maximal-length sequence has 2^(n-1) ones and 2^(n-1)-1 zeros.
        bits = prbs_sequence(7, 127)
        assert bits.sum() == 64

    def test_prbs9_is_balanced(self):
        bits = prbs_sequence(9, 511)
        assert bits.sum() == 256

    def test_prbs7_max_run_length(self):
        # A PRBS-n contains a single run of n identical bits and none
        # longer (within one period considered cyclically).
        bits = prbs_sequence(7, 2 * 127)
        assert run_lengths(bits).max() == 7

    def test_prbs7_visits_all_states(self):
        # All 127 non-zero 7-bit windows appear in one period (cyclic).
        bits = prbs_sequence(7, 127 + 6)
        windows = set()
        for i in range(127):
            window = tuple(bits[i : i + 7])
            windows.add(window)
        assert len(windows) == 127
        assert (0,) * 7 not in windows

    def test_different_seeds_are_shifts(self):
        # Different seeds produce cyclic shifts of the same sequence.
        a = prbs_sequence(7, 127, seed=1)
        b = prbs_sequence(7, 127, seed=47)
        doubled = np.concatenate([a, a])
        found = any(
            np.array_equal(doubled[k : k + 127], b) for k in range(127)
        )
        assert found

    def test_zero_bits(self):
        assert prbs_sequence(7, 0).size == 0

    def test_rejects_unknown_order(self):
        with pytest.raises(PatternError):
            prbs_sequence(8, 10)

    def test_rejects_zero_seed(self):
        with pytest.raises(PatternError):
            prbs_sequence(7, 10, seed=0)

    def test_rejects_negative_length(self):
        with pytest.raises(PatternError):
            prbs_sequence(7, -1)

    def test_prbs_period_rejects_unknown_order(self):
        with pytest.raises(PatternError):
            prbs_period(10)

    @given(st.sampled_from(sorted(PRBS_TAPS)), st.integers(1, 300))
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, order, n_bits):
        a = prbs_sequence(order, n_bits)
        b = prbs_sequence(order, n_bits)
        np.testing.assert_array_equal(a, b)


class TestClockAndAlternating:
    def test_clock_bits(self):
        np.testing.assert_array_equal(clock_bits(2), [1, 0, 1, 0])

    def test_clock_rejects_zero_cycles(self):
        with pytest.raises(PatternError):
            clock_bits(0)

    def test_alternating_starts_with_one(self):
        np.testing.assert_array_equal(alternating_bits(5), [1, 0, 1, 0, 1])

    def test_alternating_starts_with_zero(self):
        np.testing.assert_array_equal(
            alternating_bits(4, first=0), [0, 1, 0, 1]
        )

    def test_alternating_rejects_bad_first(self):
        with pytest.raises(PatternError):
            alternating_bits(4, first=2)

    def test_alternating_rejects_empty(self):
        with pytest.raises(PatternError):
            alternating_bits(0)


class TestK285:
    def test_length(self):
        assert k28_5_bits(3).size == 30

    def test_rd_minus_pattern(self):
        np.testing.assert_array_equal(
            k28_5_bits(1), [0, 0, 1, 1, 1, 1, 1, 0, 1, 0]
        )

    def test_rd_plus_is_complement(self):
        minus = k28_5_bits(1, disparity_negative=True)
        plus = k28_5_bits(1, disparity_negative=False)
        np.testing.assert_array_equal(plus, 1 - minus)

    def test_rejects_zero_repeats(self):
        with pytest.raises(PatternError):
            k28_5_bits(0)


class TestBitsFromString:
    def test_basic(self):
        np.testing.assert_array_equal(bits_from_string("1011"), [1, 0, 1, 1])

    def test_spaces_and_underscores_ignored(self):
        np.testing.assert_array_equal(
            bits_from_string("10 11_00"), [1, 0, 1, 1, 0, 0]
        )

    def test_rejects_other_chars(self):
        with pytest.raises(PatternError):
            bits_from_string("10121")

    def test_rejects_empty(self):
        with pytest.raises(PatternError):
            bits_from_string("  ")


class TestRandomBits:
    def test_reproducible_with_same_rng_seed(self):
        a = random_bits(100, np.random.default_rng(1))
        b = random_bits(100, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_roughly_balanced(self):
        bits = random_bits(10000, np.random.default_rng(2))
        assert 4500 < bits.sum() < 5500

    def test_rejects_negative(self):
        with pytest.raises(PatternError):
            random_bits(-1, np.random.default_rng(0))


class TestRepeatToLength:
    def test_exact_multiple(self):
        np.testing.assert_array_equal(
            repeat_to_length([1, 0], 4), [1, 0, 1, 0]
        )

    def test_truncates(self):
        np.testing.assert_array_equal(
            repeat_to_length([1, 1, 0], 5), [1, 1, 0, 1, 1]
        )

    def test_zero_length(self):
        assert repeat_to_length([1], 0).size == 0

    def test_rejects_empty_base(self):
        with pytest.raises(PatternError):
            repeat_to_length([], 5)


class TestRunLengths:
    def test_simple(self):
        np.testing.assert_array_equal(
            run_lengths([1, 1, 0, 1, 1, 1]), [2, 1, 3]
        )

    def test_single_run(self):
        np.testing.assert_array_equal(run_lengths([0, 0, 0]), [3])

    def test_empty(self):
        assert run_lengths([]).size == 0

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_run_lengths_sum_to_total(self, bits):
        assert run_lengths(bits).sum() == len(bits)


class TestPrbsCache:
    """The PRBS core memoization: same bits, LFSR walked once."""

    def test_repeat_generation_hits_cache(self):
        from repro import instrument
        from repro.signals import clear_prbs_cache

        clear_prbs_cache()
        with instrument.enabled_scope(reset=True) as registry:
            first = prbs_sequence(9, 511)
            second = prbs_sequence(9, 511)
            counters = registry.snapshot()["counters"]
        np.testing.assert_array_equal(first, second)
        assert counters["patterns.prbs_cache_misses"] == 1
        assert counters["patterns.prbs_cache_hits"] == 1

    def test_cached_results_are_independent_copies(self):
        from repro.signals import clear_prbs_cache

        clear_prbs_cache()
        first = prbs_sequence(7, 127)
        first[:] = 9  # vandalise the returned array
        second = prbs_sequence(7, 127)
        assert set(np.unique(second)) <= {0, 1}

    def test_shorter_request_slices_longer_core(self):
        from repro.signals import clear_prbs_cache

        clear_prbs_cache()
        full = prbs_sequence(7, 127)
        head = prbs_sequence(7, 10)
        np.testing.assert_array_equal(head, full[:10])

    def test_longer_request_after_short_regenerates(self):
        from repro.signals import clear_prbs_cache

        clear_prbs_cache()
        head = prbs_sequence(7, 10)
        full = prbs_sequence(7, 127)
        np.testing.assert_array_equal(head, full[:10])
        assert full.size == 127

    def test_distinct_seeds_are_distinct_entries(self):
        from repro.signals import clear_prbs_cache

        clear_prbs_cache()
        a = prbs_sequence(7, 127, seed=1)
        b = prbs_sequence(7, 127, seed=2)
        assert not np.array_equal(a, b)
        # and the cache returns the right one afterwards
        np.testing.assert_array_equal(prbs_sequence(7, 127, seed=1), a)
        np.testing.assert_array_equal(prbs_sequence(7, 127, seed=2), b)


class TestPrbsGenerator:
    def _generator(self, order=7, seed=1):
        from repro.signals import PRBSGenerator

        return PRBSGenerator(order, seed=seed)

    @pytest.mark.parametrize(
        "splits",
        [(300,), (127, 173), (1, 1, 298), (50, 50, 50, 150)],
    )
    def test_chunked_takes_concatenate_to_sequence(self, splits):
        generator = self._generator()
        chunks = [generator.take(n) for n in splits]
        np.testing.assert_array_equal(
            np.concatenate(chunks), prbs_sequence(7, 300)
        )

    def test_order23_walk_path_matches_sequence(self):
        # Orders above the memoised-core threshold step the LFSR
        # directly, carrying the register across takes.
        generator = self._generator(order=23)
        chunks = [generator.take(n) for n in (100, 1, 899)]
        np.testing.assert_array_equal(
            np.concatenate(chunks), prbs_sequence(23, 1000)
        )

    def test_phase_tracks_position(self):
        generator = self._generator()
        generator.take(130)
        assert generator.phase == 130 % 127

    def test_reset_rewinds_to_seed(self):
        generator = self._generator()
        first = generator.take(200)
        generator.reset()
        np.testing.assert_array_equal(generator.take(200), first)
        assert generator.phase == 200 % 127

    def test_zero_take_is_empty(self):
        generator = self._generator()
        assert generator.take(0).size == 0
        np.testing.assert_array_equal(
            generator.take(127), prbs_sequence(7, 127)
        )

    def test_negative_take_rejected(self):
        with pytest.raises(PatternError):
            self._generator().take(-1)

    def test_seed_selects_phase(self):
        a = self._generator(seed=1).take(127)
        b = self._generator(seed=2).take(127)
        assert not np.array_equal(a, b)


class TestPrbsCacheThreadSafety:
    def test_concurrent_mixed_requests_are_correct(self):
        """Hammer the memoised core from many threads with different
        (order, seed, length) mixes; every reply must equal a fresh
        single-threaded generation.  Guards the lock added around the
        cache's check-evict-insert sequence."""
        import threading

        from repro.signals import clear_prbs_cache

        clear_prbs_cache()
        expected = {
            (order, seed): prbs_sequence(order, prbs_period(order), seed=seed)
            for order in (7, 9)
            for seed in (1, 2, 3)
        }
        clear_prbs_cache()
        failures = []
        barrier = threading.Barrier(8)

        def worker(index):
            barrier.wait()
            for step in range(40):
                order = (7, 9)[(index + step) % 2]
                seed = 1 + (index + step) % 3
                n = 10 + (index * 37 + step * 13) % (
                    prbs_period(order) - 10
                )
                got = prbs_sequence(order, n, seed=seed)
                want = expected[(order, seed)][:n]
                if not np.array_equal(got, want):
                    failures.append((index, step, order, seed, n))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
