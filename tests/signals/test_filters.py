"""Tests for the linear filter blocks."""

import numpy as np
import pytest

from repro.errors import WaveformError
from repro.signals import (
    Waveform,
    bandwidth_to_rise_time,
    bandwidth_to_time_constant,
    bilinear_lowpass_coefficients,
    cascade_filter_plan,
    clear_filter_caches,
    gaussian_lowpass,
    lowpass_zi_unit,
    moving_average,
    multi_pole_lowpass,
    rise_time_to_bandwidth,
    single_pole_highpass,
    single_pole_lowpass,
    synthesize_step,
)
from repro.signals.edges import crossing_times


def sine(frequency, dt=1e-12, cycles=50, amplitude=1.0):
    duration = cycles / frequency
    return Waveform.from_function(
        lambda t: amplitude * np.sin(2 * np.pi * frequency * t),
        duration,
        dt,
    )


class TestConversions:
    def test_bandwidth_to_tau(self):
        tau = bandwidth_to_time_constant(1e9)
        assert tau == pytest.approx(1 / (2 * np.pi * 1e9))

    def test_rise_bandwidth_round_trip(self):
        bw = rise_time_to_bandwidth(35e-12)
        assert bandwidth_to_rise_time(bw) == pytest.approx(35e-12)

    def test_rejects_nonpositive(self):
        with pytest.raises(WaveformError):
            bandwidth_to_time_constant(0.0)
        with pytest.raises(WaveformError):
            rise_time_to_bandwidth(-1.0)
        with pytest.raises(WaveformError):
            bandwidth_to_rise_time(0.0)


class TestBilinearCoefficients:
    """Pin the shared one-pole bilinear-transform construction.

    Every discrete one-pole in the simulator (filters, stage
    bandwidth, trace dispersion) must build the same ``(b, a)`` pair;
    these values are the closed-form bilinear transform of
    ``1 / (1 + s*tau)`` at sample interval ``dt``.
    """

    def test_pinned_values(self):
        dt, tau = 1e-12, 20e-12
        b, a = bilinear_lowpass_coefficients(dt, tau)
        k = 2.0 * tau / dt
        np.testing.assert_allclose(
            b, [1.0 / (1.0 + k), 1.0 / (1.0 + k)], rtol=0, atol=0
        )
        np.testing.assert_allclose(
            a, [1.0, (1.0 - k) / (1.0 + k)], rtol=0, atol=0
        )

    def test_unity_dc_gain(self):
        for tau in (1e-12, 5e-11, 3e-9):
            b, a = bilinear_lowpass_coefficients(1e-12, tau)
            assert b.sum() / a.sum() == pytest.approx(1.0, rel=1e-12)

    def test_rejects_nonpositive(self):
        with pytest.raises(WaveformError):
            bilinear_lowpass_coefficients(0.0, 1e-12)
        with pytest.raises(WaveformError):
            bilinear_lowpass_coefficients(1e-12, -1e-12)

    def test_matches_single_pole_lowpass(self):
        # The filter built from the shared coefficients must be the
        # filter single_pole_lowpass applies.
        wave = synthesize_step(1e-12, rise_time=5e-12)
        bandwidth = 10e9
        filtered = single_pole_lowpass(wave, bandwidth)
        from scipy.signal import lfilter, lfilter_zi

        tau = bandwidth_to_time_constant(bandwidth)
        b, a = bilinear_lowpass_coefficients(wave.dt, tau)
        zi = lfilter_zi(b, a) * wave.values[0]
        expected, _ = lfilter(b, a, wave.values, zi=zi)
        np.testing.assert_array_equal(filtered.values, expected)


class TestSinglePoleLowpass:
    def test_minus_3db_at_corner(self):
        wf = sine(1e9, dt=1e-12)
        out = single_pole_lowpass(wf, 1e9)
        # Discard the settling region, compare steady-state amplitude.
        steady = out.slice_time(20e-9, out.t_end)
        gain = steady.amplitude() / 1.0
        assert gain == pytest.approx(1 / np.sqrt(2), rel=0.02)

    def test_passband_flat(self):
        wf = sine(0.1e9, dt=2e-12, cycles=20)
        out = single_pole_lowpass(wf, 10e9)
        steady = out.slice_time(50e-9, out.t_end)
        assert steady.amplitude() == pytest.approx(1.0, rel=0.01)

    def test_dc_preserved(self):
        wf = Waveform.constant(0.7, 5e-9, 1e-12)
        out = single_pole_lowpass(wf, 1e9)
        np.testing.assert_allclose(out.values, 0.7, rtol=1e-6)

    def test_no_startup_transient_from_settled_level(self):
        wf = Waveform.constant(-0.4, 1e-9, 1e-12)
        out = single_pole_lowpass(wf, 5e9)
        assert abs(out.values[0] + 0.4) < 1e-9

    def test_step_response_rise_time(self):
        step = synthesize_step(0.5e-12, rise_time=1e-12, t_after=2e-9)
        out = single_pole_lowpass(step, 3.5e9)
        # 10-90 rise of a single pole is 2.2 tau = 0.35/BW.
        v = out.values
        swing = v[-1] - v[0]
        t10 = crossing_times(out, v[0] + 0.1 * swing, "rising")[0]
        t90 = crossing_times(out, v[0] + 0.9 * swing, "rising")[0]
        assert (t90 - t10) == pytest.approx(0.35 / 3.5e9, rel=0.05)


class TestMultiPole:
    def test_combined_bandwidth(self):
        wf = sine(1e9, dt=1e-12)
        out = multi_pole_lowpass(wf, 1e9, n_poles=3)
        steady = out.slice_time(20e-9, out.t_end)
        assert steady.amplitude() == pytest.approx(1 / np.sqrt(2), rel=0.03)

    def test_one_pole_equals_single(self):
        wf = sine(2e9, dt=1e-12, cycles=10)
        a = multi_pole_lowpass(wf, 3e9, n_poles=1)
        b = single_pole_lowpass(wf, 3e9)
        np.testing.assert_allclose(a.values, b.values, atol=1e-12)

    def test_rejects_zero_poles(self):
        with pytest.raises(WaveformError):
            multi_pole_lowpass(sine(1e9), 1e9, n_poles=0)


class TestHighpass:
    def test_blocks_dc(self):
        wf = Waveform.constant(0.7, 20e-9, 2e-12)
        out = single_pole_highpass(wf, 1e6)
        np.testing.assert_allclose(out.values, 0.0, atol=1e-6)

    def test_passes_high_frequency(self):
        wf = sine(1e9, dt=1e-12, cycles=20)
        out = single_pole_highpass(wf, 1e6)
        steady = out.slice_time(5e-9, out.t_end)
        assert steady.amplitude() == pytest.approx(1.0, rel=0.01)

    def test_minus_3db_at_corner(self):
        wf = sine(1e6, dt=50e-12, cycles=30)
        out = single_pole_highpass(wf, 1e6)
        steady = out.slice_time(10e-6, out.t_end)
        assert steady.amplitude() == pytest.approx(1 / np.sqrt(2), rel=0.03)


class TestGaussianAndBoxcar:
    def test_gaussian_preserves_crossing_position(self):
        step = synthesize_step(0.5e-12, rise_time=5e-12, step_time=0.3e-9)
        smoothed = gaussian_lowpass(step, 10e-12)
        before = crossing_times(step, 0.0, "rising")[0]
        after = crossing_times(smoothed, 0.0, "rising")[0]
        assert after == pytest.approx(before, abs=0.05e-12)

    def test_gaussian_zero_sigma_is_copy(self):
        wf = sine(1e9)
        out = gaussian_lowpass(wf, 0.0)
        np.testing.assert_array_equal(out.values, wf.values)

    def test_gaussian_rejects_negative(self):
        with pytest.raises(WaveformError):
            gaussian_lowpass(sine(1e9), -1e-12)

    def test_gaussian_reduces_slope(self):
        step = synthesize_step(0.5e-12, rise_time=5e-12)
        smoothed = gaussian_lowpass(step, 20e-12)
        raw_slope = np.abs(np.diff(step.values)).max()
        smooth_slope = np.abs(np.diff(smoothed.values)).max()
        assert smooth_slope < raw_slope / 2

    def test_moving_average_dc(self):
        wf = Waveform.constant(0.3, 1e-9, 1e-12)
        out = moving_average(wf, 50e-12)
        np.testing.assert_allclose(out.values, 0.3, atol=1e-12)

    def test_moving_average_single_sample_window(self):
        wf = sine(1e9)
        out = moving_average(wf, 0.1e-12)
        np.testing.assert_array_equal(out.values, wf.values)

    def test_moving_average_even_window_preserves_crossing(self):
        # Regression: an even sample count has no centre sample, so the
        # boxcar was effectively asymmetric and every edge shifted by
        # dt/2 (0.5 ps here) — fatal for a library measuring single
        # picoseconds.  The window must be rounded to odd so a linear
        # ramp's zero crossing stays exactly put.
        dt = 1e-12
        t_cross = 500.4e-12
        wf = Waveform.from_function(
            lambda t: 1e9 * (t - t_cross), 1000e-12, dt
        )
        from repro.signals import crossing_times

        for window_time in (4 * dt, 5 * dt, 8 * dt, 9 * dt):
            averaged = moving_average(wf, window_time)
            crossings = crossing_times(averaged, 0.0, "rising")
            assert crossings.size == 1
            assert crossings[0] == pytest.approx(t_cross, abs=1e-15)

    def test_moving_average_attenuates_matched_period(self):
        # Averaging over exactly one period nulls a sine.
        wf = sine(1e9, dt=1e-12)
        out = moving_average(wf, 1e-9)
        steady = out.slice_time(5e-9, out.t_end)
        assert steady.amplitude() < 0.02


class TestFilterCaches:
    """Bounded memo caches behind lowpass_zi_unit / cascade_filter_plan."""

    @pytest.fixture(autouse=True)
    def _fresh_caches(self):
        clear_filter_caches()
        yield
        clear_filter_caches()

    def test_zi_cache_hit_miss_counters(self):
        from repro import instrument

        with instrument.enabled_scope(reset=True) as registry:
            first = lowpass_zi_unit(1e-12, 2e-11)
            second = lowpass_zi_unit(1e-12, 2e-11)
            counters = registry.snapshot()["counters"]
        assert counters["filters.zi_cache_misses"] == 1
        assert counters["filters.zi_cache_hits"] == 1
        assert second is first  # the cached object itself

    def test_plan_cache_hit_miss_counters(self):
        from repro import instrument

        with instrument.enabled_scope(reset=True) as registry:
            first = cascade_filter_plan(1e-12, 2e-11)
            second = cascade_filter_plan(1e-12, 2e-11)
            counters = registry.snapshot()["counters"]
        assert counters["filters.plan_cache_misses"] == 1
        assert counters["filters.plan_cache_hits"] == 1
        assert second is first

    def test_plan_matches_direct_builders(self):
        b, a, zi_unit = cascade_filter_plan(2e-12, 3e-11)
        b_ref, a_ref = bilinear_lowpass_coefficients(2e-12, 3e-11)
        np.testing.assert_array_equal(b, b_ref)
        np.testing.assert_array_equal(a, a_ref)
        np.testing.assert_array_equal(zi_unit, lowpass_zi_unit(2e-12, 3e-11))

    def test_cached_arrays_are_read_only(self):
        b, a, zi_unit = cascade_filter_plan(1e-12, 5e-11)
        for array in (b, a, zi_unit, lowpass_zi_unit(1e-12, 5e-11)):
            assert not array.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                array[0] = 0.0

    def test_caches_are_bounded_fifo(self):
        from repro.signals import filters

        for i in range(filters._FILTER_CACHE_MAX + 8):
            dt = 1e-12 * (1.0 + i * 1e-3)
            lowpass_zi_unit(dt, 2e-11)
            cascade_filter_plan(dt, 2e-11)
        assert len(filters._ZI_CACHE) == filters._FILTER_CACHE_MAX
        assert len(filters._PLAN_CACHE) == filters._FILTER_CACHE_MAX
        # FIFO: the oldest keys were evicted, the newest survive.
        newest = (float(1e-12 * (1.0 + (filters._FILTER_CACHE_MAX + 7) * 1e-3)),
                  float(2e-11))
        oldest = (float(1e-12), float(2e-11))
        assert newest in filters._ZI_CACHE
        assert oldest not in filters._ZI_CACHE

    def test_clear_filter_caches_forces_resolve(self):
        from repro import instrument
        from repro.signals import filters

        lowpass_zi_unit(1e-12, 2e-11)
        clear_filter_caches()
        assert not filters._ZI_CACHE and not filters._PLAN_CACHE
        with instrument.enabled_scope(reset=True) as registry:
            lowpass_zi_unit(1e-12, 2e-11)
            counters = registry.snapshot()["counters"]
        assert counters["filters.zi_cache_misses"] == 1
