"""Tests for threshold-crossing extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientEdgesError, MeasurementError
from repro.signals import (
    Waveform,
    auto_threshold,
    crossing_times,
    crossing_times_hysteresis,
    extract_edges,
    falling_edge_times,
    rising_edge_times,
    slew_rate_at_crossings,
    synthesize_nrz,
)


def sine_wave(frequency=1e9, n_cycles=5, dt=1e-12, amplitude=1.0):
    duration = n_cycles / frequency
    return Waveform.from_function(
        lambda t: amplitude * np.sin(2 * np.pi * frequency * t),
        duration,
        dt,
    )


class TestCrossingTimes:
    def test_sine_zero_crossings(self):
        wf = sine_wave()
        edges = crossing_times(wf, 0.0)
        # Crossings every half period.
        np.testing.assert_allclose(np.diff(edges), 0.5e-9, rtol=1e-4)

    def test_rising_and_falling_alternate(self):
        wf = sine_wave()
        rising = crossing_times(wf, 0.0, "rising")
        falling = crossing_times(wf, 0.0, "falling")
        assert abs(len(rising) - len(falling)) <= 1
        # The sample at t=0 sits exactly on the threshold; it belongs to
        # the preceding (low) region, so the first crossing is the
        # rising one at t=0.
        assert rising[0] < falling[0]

    def test_interpolation_subsample_accuracy(self):
        wf = sine_wave(dt=5e-12)
        edges = crossing_times(wf, 0.0)
        expected = 0.5e-9 * np.arange(len(edges))
        np.testing.assert_allclose(edges, expected, atol=0.05e-12)

    def test_nonzero_threshold(self):
        wf = sine_wave(amplitude=1.0)
        rising = crossing_times(wf, 0.5, "rising")
        # sin crosses 0.5 rising at t = period/12.
        assert rising[0] == pytest.approx(1e-9 / 12, rel=1e-3)

    def test_no_crossings(self):
        wf = Waveform.constant(1.0, 1e-9, 1e-12)
        assert crossing_times(wf, 0.0).size == 0

    def test_convenience_wrappers(self):
        wf = sine_wave()
        np.testing.assert_array_equal(
            rising_edge_times(wf), crossing_times(wf, 0.0, "rising")
        )
        np.testing.assert_array_equal(
            falling_edge_times(wf), crossing_times(wf, 0.0, "falling")
        )

    def test_unknown_direction_raises(self):
        wf = sine_wave()
        edges = extract_edges(wf)
        with pytest.raises(MeasurementError):
            edges.select("sideways")


class TestEdgeList:
    def test_intervals(self):
        wf = sine_wave()
        edges = extract_edges(wf)
        np.testing.assert_allclose(edges.intervals(), 0.5e-9, rtol=1e-4)

    def test_len(self):
        wf = sine_wave(n_cycles=3)
        assert len(extract_edges(wf)) == crossing_times(wf).size

    def test_polarity_flags(self):
        wf = sine_wave()
        edges = extract_edges(wf)
        # Polarities strictly alternate for a sine.
        assert np.all(edges.rising[:-1] != edges.rising[1:])


class TestAutoThreshold:
    def test_symmetric_signal(self):
        wf = synthesize_nrz([0, 1, 0, 1, 1, 0], 1e9, 1e-12, amplitude=0.4)
        assert auto_threshold(wf) == pytest.approx(0.0, abs=0.02)

    def test_offset_signal(self):
        wf = synthesize_nrz([0, 1, 0, 1, 1, 0], 1e9, 1e-12) + 1.0
        assert auto_threshold(wf) == pytest.approx(1.0, abs=0.02)


class TestHysteresis:
    def test_clean_signal_same_as_plain(self):
        # The comparator starts inside its band at t=0 (the sine sits
        # exactly on the threshold there), so it may not report the
        # boundary edge; all interior edges must match the plain
        # extractor exactly.
        wf = sine_wave()
        plain = crossing_times(wf, 0.0)
        hyst = crossing_times_hysteresis(wf, 0.0, hysteresis=0.2)
        assert plain.size - hyst.size in (0, 1)
        np.testing.assert_allclose(hyst, plain[-hyst.size :], atol=0.5e-12)

    def test_noise_rejection(self):
        # A noisy slow edge re-crosses the bare threshold many times;
        # the hysteresis comparator reports exactly one edge.
        rng = np.random.default_rng(3)
        t = np.linspace(0, 1, 2001)
        clean = np.tanh((t - 0.5) * 20)  # one slow rising edge
        noisy = clean + rng.normal(0, 0.05, t.size)
        wf = Waveform(noisy, dt=1e-12)
        plain = crossing_times(wf, 0.0)
        hyst = crossing_times_hysteresis(wf, 0.0, hysteresis=0.3)
        assert plain.size > 1  # noise caused re-crossings
        assert hyst.size == 1

    def test_zero_hysteresis_falls_back(self):
        wf = sine_wave()
        a = crossing_times_hysteresis(wf, 0.0, hysteresis=0.0)
        b = crossing_times(wf, 0.0)
        np.testing.assert_array_equal(a, b)

    def test_rejects_negative_hysteresis(self):
        with pytest.raises(MeasurementError):
            crossing_times_hysteresis(sine_wave(), 0.0, hysteresis=-0.1)

    def test_direction_filter(self):
        wf = sine_wave()
        rising = crossing_times_hysteresis(
            wf, 0.0, hysteresis=0.2, direction="rising"
        )
        plain_rising = crossing_times(wf, 0.0, "rising")
        # Possibly missing the boundary edge at t=0 (see above).
        assert plain_rising.size - rising.size in (0, 1)
        np.testing.assert_allclose(
            rising, plain_rising[-rising.size :], atol=0.5e-12
        )

    def test_all_inside_band_returns_empty(self):
        wf = Waveform.constant(0.0, 1e-9, 1e-12)
        assert crossing_times_hysteresis(wf, 0.0, hysteresis=0.5).size == 0

    def test_empty_result_is_shaped_float_array(self):
        # Regression: the no-crossings path returned a bare
        # ``np.empty(0)`` instead of going through the EdgeList, so the
        # dtype/shape contract differed from the non-empty path.
        wf = Waveform.constant(0.0, 1e-9, 1e-12)
        for direction in ("rising", "falling", "both"):
            result = crossing_times_hysteresis(
                wf, 0.0, hysteresis=0.5, direction=direction
            )
            assert isinstance(result, np.ndarray)
            assert result.dtype == np.float64
            assert result.shape == (0,)

    def test_empty_result_still_validates_direction(self):
        # Regression: pre-fix, an invalid direction was silently
        # accepted whenever the record produced no crossings.
        wf = Waveform.constant(0.0, 1e-9, 1e-12)
        with pytest.raises(MeasurementError):
            crossing_times_hysteresis(
                wf, 0.0, hysteresis=0.5, direction="sideways"
            )


class TestSlewRate:
    def test_sine_slew_at_zero(self):
        wf = sine_wave(frequency=1e9, amplitude=1.0, dt=0.1e-12)
        slopes = slew_rate_at_crossings(wf, 0.0, "rising")
        # d/dt sin(2 pi f t) at zero crossing = 2 pi f.
        np.testing.assert_allclose(slopes, 2 * np.pi * 1e9, rtol=1e-3)

    def test_falling_slopes_negative(self):
        wf = sine_wave()
        slopes = slew_rate_at_crossings(wf, 0.0, "falling")
        assert np.all(slopes < 0)

    def test_no_edges_raises(self):
        wf = Waveform.constant(1.0, 1e-9, 1e-12)
        with pytest.raises(InsufficientEdgesError):
            slew_rate_at_crossings(wf, 0.0)


class TestRoundTripProperty:
    @given(
        st.lists(
            st.floats(min_value=50e-12, max_value=400e-12),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_synthesis_extraction_round_trip(self, gaps):
        # Build edges at cumulative instants, render, extract, compare.
        instants = 100e-12 + np.cumsum(np.asarray(gaps))
        targets = np.arange(len(instants)) % 2  # alternate 0,1 start low?
        targets = 1 - targets  # first transition rises
        from repro.signals import render_transitions

        wf = render_transitions(
            instants,
            targets,
            duration=float(instants[-1] + 500e-12),
            dt=1e-12,
            amplitude=0.4,
            rise_time=25e-12,
        )
        recovered = crossing_times(wf, 0.0)
        assert recovered.size == instants.size
        np.testing.assert_allclose(recovered, instants, atol=0.6e-12)
