"""Tests for the Waveform and DifferentialPair types."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SampleRateMismatchError, WaveformError
from repro.signals import Waveform, WaveformBatch, DifferentialPair


def ramp(n=101, dt=1e-12, t0=0.0):
    return Waveform(np.linspace(-1.0, 1.0, n), dt, t0)


class TestConstruction:
    def test_basic(self):
        wf = Waveform([0.0, 1.0, 2.0], dt=1e-12)
        assert len(wf) == 3
        assert wf.dt == 1e-12
        assert wf.t0 == 0.0

    def test_values_converted_to_float64(self):
        wf = Waveform([0, 1, 2], dt=1e-12)
        assert wf.values.dtype == np.float64

    def test_rejects_2d(self):
        with pytest.raises(WaveformError):
            Waveform(np.zeros((2, 2)), dt=1e-12)

    def test_rejects_empty(self):
        with pytest.raises(WaveformError):
            Waveform([], dt=1e-12)

    def test_rejects_nan(self):
        with pytest.raises(WaveformError):
            Waveform([0.0, np.nan], dt=1e-12)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(WaveformError):
            Waveform([0.0, 1.0], dt=0.0)

    def test_from_function(self):
        wf = Waveform.from_function(np.sin, duration=1.0, dt=0.25)
        assert len(wf) == 5
        assert wf.values[0] == pytest.approx(0.0)

    def test_constant(self):
        wf = Waveform.constant(0.4, duration=1e-9, dt=1e-12)
        assert np.all(wf.values == 0.4)
        assert len(wf) == 1001


class TestAccessors:
    def test_times_axis(self):
        wf = Waveform([1.0, 2.0, 3.0], dt=2e-12, t0=1e-12)
        np.testing.assert_allclose(wf.times(), [1e-12, 3e-12, 5e-12])

    def test_duration(self):
        wf = Waveform(np.zeros(11), dt=1e-12)
        assert wf.duration == pytest.approx(10e-12)

    def test_t_end(self):
        wf = Waveform(np.zeros(11), dt=1e-12, t0=5e-12)
        assert wf.t_end == pytest.approx(15e-12)

    def test_sample_rate(self):
        wf = Waveform(np.zeros(3), dt=1e-12)
        assert wf.sample_rate == pytest.approx(1e12)


class TestArithmetic:
    def test_add_scalar(self):
        wf = ramp() + 0.5
        assert wf.values[0] == pytest.approx(-0.5)

    def test_radd_scalar(self):
        wf = 0.5 + ramp()
        assert wf.values[-1] == pytest.approx(1.5)

    def test_add_waveform(self):
        total = ramp() + ramp()
        np.testing.assert_allclose(total.values, 2 * ramp().values)

    def test_sub_waveform_is_zero(self):
        diff = ramp() - ramp()
        assert diff.peak_to_peak() == pytest.approx(0.0)

    def test_mul(self):
        wf = ramp() * 3.0
        assert wf.values[-1] == pytest.approx(3.0)

    def test_neg(self):
        wf = -ramp()
        assert wf.values[0] == pytest.approx(1.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(WaveformError):
            ramp(101) + ramp(100)

    def test_dt_mismatch_raises(self):
        with pytest.raises(SampleRateMismatchError):
            ramp(dt=1e-12) + ramp(dt=2e-12)

    def test_clip(self):
        wf = ramp().clip(-0.5, 0.5)
        assert wf.values.max() == pytest.approx(0.5)
        assert wf.values.min() == pytest.approx(-0.5)

    def test_clip_inverted_bounds(self):
        with pytest.raises(WaveformError):
            ramp().clip(1.0, -1.0)

    def test_map(self):
        wf = ramp().map(np.abs)
        assert wf.values.min() >= 0.0


class TestTimeOperations:
    def test_value_at_exact_sample(self):
        wf = Waveform([0.0, 1.0, 2.0], dt=1e-12)
        assert wf.value_at(1e-12) == pytest.approx(1.0)

    def test_value_at_interpolates(self):
        wf = Waveform([0.0, 1.0], dt=1e-12)
        assert wf.value_at(0.5e-12) == pytest.approx(0.5)

    def test_value_at_clamps(self):
        wf = Waveform([1.0, 2.0], dt=1e-12)
        assert wf.value_at(-1e-9) == pytest.approx(1.0)
        assert wf.value_at(1e-9) == pytest.approx(2.0)

    def test_value_at_array(self):
        wf = Waveform([0.0, 1.0, 2.0], dt=1e-12)
        out = wf.value_at(np.array([0.0, 2e-12]))
        np.testing.assert_allclose(out, [0.0, 2.0])

    def test_shifted_moves_t0_only(self):
        wf = ramp().shifted(5e-12)
        assert wf.t0 == pytest.approx(5e-12)
        np.testing.assert_array_equal(wf.values, ramp().values)

    def test_delayed_keeps_grid(self):
        wf = ramp().delayed(3e-12)
        assert wf.t0 == ramp().t0
        assert len(wf) == len(ramp())

    def test_delayed_zero_is_copy(self):
        original = ramp()
        delayed = original.delayed(0.0)
        np.testing.assert_array_equal(delayed.values, original.values)

    def test_delayed_subsample_accuracy(self):
        # Delay a linear ramp by 0.3 samples; interpolation is exact
        # for linear signals.
        wf = ramp(n=1001)
        delayed = wf.delayed(0.3e-12)
        inner = slice(10, -10)
        expected = wf.values[inner] - 0.3e-12 * (2.0 / (1000 * 1e-12))
        np.testing.assert_allclose(delayed.values[inner], expected, rtol=1e-9)

    def test_slice_time(self):
        wf = Waveform(np.arange(10.0), dt=1e-12)
        cut = wf.slice_time(2e-12, 5e-12)
        np.testing.assert_array_equal(cut.values, [2.0, 3.0, 4.0, 5.0])
        assert cut.t0 == pytest.approx(2e-12)

    def test_slice_time_empty_raises(self):
        with pytest.raises(WaveformError):
            Waveform(np.arange(10.0), dt=1e-12).slice_time(5e-12, 2e-12)

    def test_resampled_halves_interval(self):
        wf = ramp(n=11)
        fine = wf.resampled(0.5e-12)
        assert fine.dt == pytest.approx(0.5e-12)
        assert fine.value_at(5e-12) == pytest.approx(wf.value_at(5e-12))

    def test_resampled_rejects_nonpositive(self):
        with pytest.raises(WaveformError):
            ramp().resampled(-1e-12)

    def test_concatenate(self):
        joined = ramp(n=5).concatenate(ramp(n=5))
        assert len(joined) == 10

    def test_concatenate_dt_mismatch(self):
        with pytest.raises(SampleRateMismatchError):
            ramp(dt=1e-12).concatenate(ramp(dt=2e-12))


class TestStatistics:
    def test_peak_to_peak(self):
        assert ramp().peak_to_peak() == pytest.approx(2.0)

    def test_mean(self):
        assert ramp().mean() == pytest.approx(0.0, abs=1e-12)

    def test_rms_of_constant(self):
        wf = Waveform.constant(0.5, 1e-9, 1e-12)
        assert wf.rms() == pytest.approx(0.5)

    def test_amplitude_robust_to_spikes(self):
        values = np.concatenate([np.full(500, -0.4), np.full(500, 0.4)])
        values[0] = 10.0  # a glitch
        wf = Waveform(values, dt=1e-12)
        assert wf.amplitude() == pytest.approx(0.4, rel=0.05)


class TestHypothesisProperties:
    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10),
            min_size=2,
            max_size=50,
        ),
        st.floats(min_value=1e-13, max_value=1e-9),
    )
    @settings(max_examples=50, deadline=None)
    def test_shift_roundtrip(self, values, delay):
        wf = Waveform(values, dt=1e-12)
        back = wf.shifted(delay).shifted(-delay)
        assert back.t0 == pytest.approx(wf.t0, abs=1e-18)
        np.testing.assert_array_equal(back.values, wf.values)

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_neg_neg_identity(self, values):
        wf = Waveform(values, dt=1e-12)
        np.testing.assert_array_equal((-(-wf)).values, wf.values)

    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5), min_size=2, max_size=50
        ),
        st.floats(min_value=-3, max_value=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_add_then_subtract_scalar(self, values, offset):
        wf = Waveform(values, dt=1e-12)
        round_trip = (wf + offset) - offset
        np.testing.assert_allclose(round_trip.values, wf.values, atol=1e-12)


class TestDifferentialPair:
    def test_from_differential_and_back(self):
        diff = ramp()
        pair = DifferentialPair.from_differential(diff, common_mode=1.2)
        np.testing.assert_allclose(pair.differential().values, diff.values)

    def test_common_mode(self):
        pair = DifferentialPair.from_differential(ramp(), common_mode=1.2)
        np.testing.assert_allclose(pair.common_mode().values, 1.2)

    def test_swapped_inverts(self):
        pair = DifferentialPair.from_differential(ramp())
        np.testing.assert_allclose(
            pair.swapped().differential().values, -ramp().values
        )

    def test_map_each(self):
        pair = DifferentialPair.from_differential(ramp(), common_mode=1.0)
        scaled = pair.map_each(lambda leg: leg * 2.0)
        np.testing.assert_allclose(
            scaled.common_mode().values, 2.0, atol=1e-12
        )

    def test_mismatched_legs_raise(self):
        with pytest.raises(WaveformError):
            DifferentialPair(ramp(n=10), ramp(n=11))

    def test_mismatched_t0_raise(self):
        with pytest.raises(WaveformError):
            DifferentialPair(ramp(), ramp(t0=1e-12))


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        wf = ramp(n=50, dt=2e-12, t0=5e-12)
        path = tmp_path / "trace.npz"
        wf.save(path)
        loaded = Waveform.load(path)
        np.testing.assert_array_equal(loaded.values, wf.values)
        assert loaded.dt == wf.dt
        assert loaded.t0 == wf.t0

    def test_load_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(WaveformError):
            Waveform.load(path)

    def test_saved_file_is_plain_npz(self, tmp_path):
        wf = ramp(n=10)
        path = tmp_path / "trace.npz"
        wf.save(path)
        with np.load(path) as archive:
            assert set(archive.files) == {"values", "dt", "t0"}


class TestDtypeAudit:
    """Narrow-float sample arrays must be rejected, not silently up-cast."""

    def test_float32_array_rejected(self):
        with pytest.raises(WaveformError, match="float32"):
            Waveform(np.zeros(8, dtype=np.float32), 1e-12)

    def test_float16_array_rejected(self):
        with pytest.raises(WaveformError, match="float16"):
            Waveform(np.zeros(8, dtype=np.float16), 1e-12)

    def test_batch_float32_rejected(self):
        with pytest.raises(WaveformError, match="float32"):
            WaveformBatch(np.zeros((2, 8), dtype=np.float32), 1e-12)

    def test_float64_and_integer_arrays_pass(self):
        Waveform(np.zeros(8), 1e-12)
        Waveform(np.arange(8), 1e-12)
        WaveformBatch(np.zeros((2, 8), dtype=np.int32), 1e-12)

    def test_plain_lists_pass(self):
        Waveform([0.0, 1.0, 0.5], 1e-12)
