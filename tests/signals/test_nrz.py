"""Tests for analog waveform synthesis (NRZ, clocks, steps)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatternError, WaveformError
from repro.signals import (
    crossing_times,
    render_transitions,
    synthesize_clock,
    synthesize_nrz,
    synthesize_rz_clock,
    synthesize_step,
    transition_times_from_bits,
)


class TestTransitionTimes:
    def test_simple_pattern(self):
        times, targets = transition_times_from_bits([1, 1, 0, 1], 100e-12)
        np.testing.assert_allclose(times, [0.0, 200e-12, 300e-12])
        np.testing.assert_array_equal(targets, [1, 0, 1])

    def test_initial_bit_suppresses_first_edge(self):
        times, targets = transition_times_from_bits(
            [1, 0], 100e-12, initial_bit=1
        )
        np.testing.assert_allclose(times, [100e-12])
        np.testing.assert_array_equal(targets, [0])

    def test_constant_pattern_has_no_edges(self):
        times, _ = transition_times_from_bits([0, 0, 0], 100e-12)
        assert times.size == 0

    def test_rejects_empty(self):
        with pytest.raises(PatternError):
            transition_times_from_bits([], 100e-12)

    def test_rejects_bad_ui(self):
        with pytest.raises(PatternError):
            transition_times_from_bits([1, 0], 0.0)

    def test_t_start_offsets_times(self):
        times, _ = transition_times_from_bits([1], 100e-12, t_start=1e-9)
        assert times[0] == pytest.approx(1e-9)


class TestRenderTransitions:
    def test_crossing_lands_at_requested_time(self):
        # Sub-sample edge placement: request an edge at a non-grid time
        # and verify the interpolated 50 % crossing recovers it.
        for instant in (500.0e-12, 500.3e-12, 500.7e-12):
            wf = render_transitions(
                np.array([instant]),
                np.array([1]),
                duration=1e-9,
                dt=1e-12,
                amplitude=0.4,
                rise_time=30e-12,
            )
            crossings = crossing_times(wf, 0.0, "rising")
            assert crossings.size == 1
            assert crossings[0] == pytest.approx(instant, abs=0.05e-12)

    def test_zero_rise_time_renders_ideal_steps(self):
        wf = render_transitions(
            np.array([500e-12]),
            np.array([1]),
            duration=1e-9,
            dt=1e-12,
            amplitude=0.4,
            rise_time=0.0,
        )
        assert wf.values[0] == pytest.approx(-0.4)
        assert wf.values[-1] == pytest.approx(0.4)

    def test_initial_level_defaults_to_complement(self):
        wf = render_transitions(
            np.array([500e-12]),
            np.array([0]),
            duration=1e-9,
            dt=1e-12,
            amplitude=0.4,
            rise_time=0.0,
        )
        assert wf.values[0] == pytest.approx(0.4)

    def test_no_transitions_is_flat(self):
        wf = render_transitions(
            np.array([]),
            np.array([], dtype=np.int64),
            duration=1e-9,
            dt=1e-12,
            amplitude=0.4,
            rise_time=0.0,
        )
        assert wf.peak_to_peak() == pytest.approx(0.0)

    def test_pre_record_transition_sets_level(self):
        wf = render_transitions(
            np.array([-1e-9]),
            np.array([1]),
            duration=1e-9,
            dt=1e-12,
            amplitude=0.4,
            rise_time=0.0,
        )
        assert np.all(wf.values == pytest.approx(0.4))

    def test_rejects_descending_times(self):
        with pytest.raises(WaveformError):
            render_transitions(
                np.array([2e-10, 1e-10]),
                np.array([1, 0]),
                duration=1e-9,
                dt=1e-12,
                amplitude=0.4,
                rise_time=0.0,
            )

    def test_rejects_length_mismatch(self):
        with pytest.raises(WaveformError):
            render_transitions(
                np.array([1e-10]),
                np.array([1, 0]),
                duration=1e-9,
                dt=1e-12,
                amplitude=0.4,
                rise_time=0.0,
            )


class TestSynthesizeNrz:
    def test_edge_count_matches_pattern(self):
        bits = [0, 1, 0, 1, 1, 0]
        # Transitions relative to an initial 0: at bits 1, 2, 3, and 5.
        wf = synthesize_nrz(bits, 2.4e9, 1e-12)
        edges = crossing_times(wf, 0.0)
        assert edges.size == 4

    def test_levels_are_plus_minus_amplitude(self):
        wf = synthesize_nrz([0, 0, 1, 1, 1], 1e9, 1e-12, amplitude=0.3)
        assert wf.values.max() == pytest.approx(0.3, rel=0.02)
        assert wf.values.min() == pytest.approx(-0.3, rel=0.02)

    def test_lead_in_starts_settled(self):
        wf = synthesize_nrz([1, 0], 2.4e9, 1e-12, lead_ui=2.0)
        assert wf.t0 == pytest.approx(-2.0 / 2.4e9)
        assert wf.values[0] == pytest.approx(-0.4, rel=0.05)

    def test_edge_jitter_moves_crossings(self):
        bits = [0, 1, 0, 1, 0, 1]
        jitter = np.array([0.0, 5e-12, 0.0, -5e-12, 0.0])
        clean = synthesize_nrz(bits, 1e9, 1e-12)
        dirty = synthesize_nrz(bits, 1e9, 1e-12, edge_jitter=jitter)
        clean_edges = crossing_times(clean, 0.0)
        dirty_edges = crossing_times(dirty, 0.0)
        deltas = dirty_edges - clean_edges
        np.testing.assert_allclose(deltas, jitter, atol=0.2e-12)

    def test_edge_jitter_length_mismatch(self):
        with pytest.raises(WaveformError):
            synthesize_nrz(
                [0, 1, 0], 1e9, 1e-12, edge_jitter=np.zeros(5)
            )

    def test_rejects_bad_rate(self):
        with pytest.raises(PatternError):
            synthesize_nrz([0, 1], 0.0, 1e-12)

    def test_rejects_negative_lead(self):
        with pytest.raises(PatternError):
            synthesize_nrz([0, 1], 1e9, 1e-12, lead_ui=-1.0)

    @given(st.integers(2, 40), st.sampled_from([1e9, 2.4e9, 6.4e9]))
    @settings(max_examples=20, deadline=None)
    def test_crossings_on_ui_grid(self, n_bits, rate):
        # Without jitter every crossing sits on an integer multiple of
        # the unit interval.
        rng = np.random.default_rng(n_bits)
        bits = rng.integers(0, 2, n_bits)
        bits[0] = 1  # guarantee at least one edge at t=0
        wf = synthesize_nrz(bits, rate, 0.5e-12)
        edges = crossing_times(wf, 0.0)
        ui = 1.0 / rate
        fractional = np.abs(edges / ui - np.round(edges / ui))
        assert np.all(fractional < 0.005)


class TestClocks:
    def test_clock_frequency(self):
        wf = synthesize_clock(1e9, 10, 1e-12)
        rising = crossing_times(wf, 0.0, "rising")
        periods = np.diff(rising)
        np.testing.assert_allclose(periods, 1e-9, rtol=1e-3)

    def test_clock_edge_count(self):
        wf = synthesize_clock(1e9, 10, 1e-12)
        edges = crossing_times(wf, 0.0)
        assert edges.size == 20

    def test_rz_clock_duty_cycle(self):
        wf = synthesize_rz_clock(1e9, 10, 1e-12, duty_cycle=0.25)
        rising = crossing_times(wf, 0.0, "rising")
        falling = crossing_times(wf, 0.0, "falling")
        widths = falling[: len(rising)] - rising[: len(falling)]
        np.testing.assert_allclose(widths.mean(), 0.25e-9, rtol=0.02)

    def test_rz_clock_half_duty_matches_square(self):
        rz = synthesize_rz_clock(1e9, 10, 1e-12, duty_cycle=0.5)
        edges = crossing_times(rz, 0.0)
        spacing = np.diff(edges)
        np.testing.assert_allclose(spacing, 0.5e-9, rtol=1e-3)

    def test_rz_rejects_bad_duty(self):
        with pytest.raises(PatternError):
            synthesize_rz_clock(1e9, 10, 1e-12, duty_cycle=1.5)

    def test_clock_rejects_bad_frequency(self):
        with pytest.raises(PatternError):
            synthesize_clock(-1e9, 10, 1e-12)


class TestStep:
    def test_rising_step(self):
        wf = synthesize_step(1e-12, rising=True)
        assert wf.values[0] == pytest.approx(-0.4, rel=0.05)
        assert wf.values[-1] == pytest.approx(0.4, rel=0.05)

    def test_falling_step(self):
        wf = synthesize_step(1e-12, rising=False)
        assert wf.values[0] == pytest.approx(0.4, rel=0.05)
        assert wf.values[-1] == pytest.approx(-0.4, rel=0.05)

    def test_step_time_is_crossing(self):
        wf = synthesize_step(1e-12, step_time=0.2e-9)
        edges = crossing_times(wf, 0.0, "rising")
        assert edges[0] == pytest.approx(0.2e-9, abs=0.1e-12)


class TestNRZStreamSource:
    BIT_RATE = 1e9

    def _source(self, bits, chunk_samples, **kwargs):
        from repro.signals import NRZStreamSource

        return NRZStreamSource(
            bits, self.BIT_RATE, 10e-12, chunk_samples, **kwargs
        )

    def _drain(self, source):
        chunks = list(source)
        return chunks, np.concatenate([c.values for c in chunks])

    @pytest.mark.parametrize("chunk_samples", (1, 7, 100, 4096, 10**9))
    def test_sample_exact_against_monolithic(self, chunk_samples):
        from repro.signals import prbs_sequence

        bits = prbs_sequence(7, 127)
        mono = synthesize_nrz(bits, self.BIT_RATE, 10e-12)
        source = self._source(bits, chunk_samples)
        chunks, values = self._drain(source)
        assert values.size == len(mono)
        np.testing.assert_array_equal(values, mono.values)
        assert chunks[0].t0 == mono.t0
        assert source.n_samples_total == len(mono)

    def test_chunk_time_axes_are_contiguous(self):
        bits = [0, 1, 1, 0, 1, 0, 0, 1]
        source = self._source(bits, 64)
        chunks, _ = self._drain(source)
        cursor = 0
        for chunk in chunks:
            assert chunk.t0 == pytest.approx(
                chunks[0].t0 + 10e-12 * cursor, abs=1e-18
            )
            cursor += len(chunk)

    def test_zero_rise_time_path(self):
        bits = [0, 1, 0, 1, 1, 0]
        mono = synthesize_nrz(bits, self.BIT_RATE, 10e-12, rise_time=0.0)
        _, values = self._drain(self._source(bits, 33, rise_time=0.0))
        np.testing.assert_array_equal(values, mono.values)

    def test_callable_bit_source(self):
        from repro.signals import PRBSGenerator, prbs_sequence

        bits = prbs_sequence(7, 400)
        mono = synthesize_nrz(bits, self.BIT_RATE, 10e-12)
        source = self._source(
            PRBSGenerator(7).take, 512, n_bits=400
        )
        _, values = self._drain(source)
        np.testing.assert_array_equal(values, mono.values)

    def test_callable_source_requires_n_bits(self):
        with pytest.raises(PatternError):
            self._source(lambda n: np.zeros(n, dtype=np.uint8), 64)

    def test_short_bit_source_detected(self):
        def starved(count):
            return np.zeros(min(count, 3), dtype=np.uint8)

        source = self._source(starved, 64, n_bits=5000)
        with pytest.raises(PatternError):
            self._drain(source)

    def test_rejects_bad_chunk_samples(self):
        with pytest.raises(WaveformError):
            self._source([0, 1], 0)

    def test_rejects_empty_bits(self):
        with pytest.raises(PatternError):
            self._source([], 64)

    def test_rejects_n_bits_beyond_sequence(self):
        with pytest.raises(PatternError):
            self._source([0, 1, 1], 64, n_bits=10)
