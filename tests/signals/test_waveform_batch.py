"""Tests for the stacked multi-lane waveform container."""

import numpy as np
import pytest

from repro.errors import SampleRateMismatchError, WaveformError
from repro.signals import Waveform, WaveformBatch


def ramp(n=64, dt=1e-12, t0=0.0, slope=1.0):
    return Waveform(slope * np.arange(n, dtype=np.float64), dt, t0)


class TestConstruction:
    def test_values_shape(self):
        values = np.arange(12.0).reshape(3, 4)
        batch = WaveformBatch(values, 1e-12)
        assert batch.n_lanes == 3
        assert batch.n_samples == 4
        assert len(batch) == 3
        np.testing.assert_array_equal(batch.values, values)

    def test_rejects_non_2d(self):
        with pytest.raises(WaveformError):
            WaveformBatch(np.arange(4.0), 1e-12)

    def test_rejects_bad_dt(self):
        with pytest.raises(WaveformError):
            WaveformBatch(np.zeros((2, 4)), 0.0)

    def test_rejects_non_finite(self):
        values = np.zeros((2, 4))
        values[1, 2] = np.nan
        with pytest.raises(WaveformError):
            WaveformBatch(values, 1e-12)

    def test_t0_broadcast_scalar_and_vector(self):
        batch = WaveformBatch(np.zeros((3, 4)), 1e-12, t0=5e-12)
        np.testing.assert_array_equal(batch.t0, np.full(3, 5e-12))
        batch = WaveformBatch(
            np.zeros((2, 4)), 1e-12, t0=[1e-12, 2e-12]
        )
        np.testing.assert_array_equal(batch.t0, [1e-12, 2e-12])


class TestFromWaveforms:
    def test_round_trip(self):
        lanes = [ramp(t0=i * 1e-12, slope=i + 1) for i in range(3)]
        batch = WaveformBatch.from_waveforms(lanes)
        back = batch.waveforms()
        assert len(back) == 3
        for original, restored in zip(lanes, back):
            np.testing.assert_array_equal(original.values, restored.values)
            assert restored.dt == original.dt
            assert restored.t0 == original.t0

    def test_rejects_mixed_dt(self):
        with pytest.raises(SampleRateMismatchError):
            WaveformBatch.from_waveforms([ramp(dt=1e-12), ramp(dt=2e-12)])

    def test_rejects_mixed_length(self):
        with pytest.raises(WaveformError):
            WaveformBatch.from_waveforms([ramp(n=64), ramp(n=65)])

    def test_rejects_empty(self):
        with pytest.raises(WaveformError):
            WaveformBatch.from_waveforms([])


class TestTiled:
    def test_tiled_copies_one_waveform(self):
        wave = ramp(t0=3e-12)
        batch = WaveformBatch.tiled(wave, 4)
        assert batch.n_lanes == 4
        for i in range(4):
            lane = batch.lane(i)
            np.testing.assert_array_equal(lane.values, wave.values)
            assert lane.t0 == wave.t0

    def test_does_not_alias_source_waveform(self):
        wave = ramp()
        batch = WaveformBatch.tiled(wave, 2)
        batch.values[0, 0] = -1.0
        assert wave.values[0] == 0.0


class TestShifted:
    def test_scalar_shift_moves_all_lanes(self):
        batch = WaveformBatch.from_waveforms([ramp(), ramp(t0=1e-12)])
        shifted = batch.shifted(10e-12)
        np.testing.assert_allclose(shifted.t0, [10e-12, 11e-12])
        np.testing.assert_array_equal(shifted.values, batch.values)

    def test_per_lane_shift(self):
        batch = WaveformBatch.tiled(ramp(), 3)
        shifted = batch.shifted([1e-12, 2e-12, 3e-12])
        np.testing.assert_allclose(shifted.t0, [1e-12, 2e-12, 3e-12])

    def test_lane_times_follow_t0(self):
        batch = WaveformBatch.tiled(ramp(n=4), 2).shifted([0.0, 5e-12])
        np.testing.assert_allclose(
            batch.lane_times(1) - batch.lane_times(0), 5e-12
        )
