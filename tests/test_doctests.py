"""Run the doctests embedded in module documentation.

Docstring examples are user-facing promises; this keeps them honest.
"""

import doctest

import pytest

import repro.units


@pytest.mark.parametrize("module", [repro.units])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
    assert results.attempted > 0  # the module actually has examples
