"""Tests for run manifests: build, validate, round-trip, profile table."""

import json

import pytest

from repro.errors import InstrumentError
from repro.instrument import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    Registry,
    build_manifest,
    kernel_stats,
    profile_table,
    validate_manifest,
    write_manifest,
)


def _sample_snapshot() -> dict:
    registry = Registry()
    registry.count("kernels.slew_limit.calls", 3)
    registry.count("kernels.slew_limit.samples", 1500)
    registry.count("kernels.slew_limit.seconds", 0.25)
    registry.count("kernels.backend.numpy.calls", 3)
    registry.count("deskew.iterations", 2)
    with registry.span("experiment.fig07"):
        with registry.span("calibrate_fine_delay"):
            pass
    return registry.snapshot()


def _sample_manifest() -> dict:
    return build_manifest(
        [
            {
                "id": "fig07",
                "title": "Delay vs Vctrl",
                "duration_s": 1.25,
                "checks_passed": True,
                "failed_checks": [],
                "n_rows": 13,
            }
        ],
        fast=True,
        jobs=1,
        backend="numpy",
        snapshot=_sample_snapshot(),
        duration_s=1.3,
    )


class TestKernelStats:
    def test_folds_flat_counters(self):
        stats = kernel_stats(_sample_snapshot()["counters"])
        assert stats["ops"]["slew_limit"] == {
            "calls": 3,
            "samples": 1500,
            "seconds": 0.25,
        }
        assert stats["backend_calls"] == {"numpy": 3}

    def test_ignores_non_kernel_counters(self):
        stats = kernel_stats({"deskew.iterations": 2, "bus.acquire.calls": 1})
        assert stats == {"ops": {}, "backend_calls": {}}


class TestBuildAndValidate:
    def test_built_manifest_validates(self):
        manifest = _sample_manifest()
        assert validate_manifest(manifest) is manifest
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["schema_version"] == MANIFEST_VERSION

    def test_contains_stage_timings_and_kernel_counters(self):
        manifest = _sample_manifest()
        assert (
            manifest["spans"]["experiment.fig07/calibrate_fine_delay"][
                "calls"
            ]
            == 1
        )
        assert manifest["kernels"]["ops"]["slew_limit"]["samples"] == 1500
        assert manifest["kernel_backend"] == "numpy"
        assert manifest["experiments"][0]["id"] == "fig07"

    def test_json_round_trip(self):
        manifest = _sample_manifest()
        recovered = json.loads(json.dumps(manifest))
        assert validate_manifest(recovered) is recovered
        assert recovered == manifest

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda m: m.pop("schema"),
            lambda m: m.update(schema="something-else"),
            lambda m: m.update(schema_version="1"),
            lambda m: m.update(kernel_backend=""),
            lambda m: m.update(fast="yes"),
            lambda m: m.update(jobs=0),
            lambda m: m.update(duration_s=-1.0),
            lambda m: m.update(experiments={}),
            lambda m: m["experiments"][0].pop("id"),
            lambda m: m["experiments"][0].update(checks_passed="true"),
            lambda m: m.update(counters=[]),
            lambda m: m.update(spans={"x": {"calls": 0, "total_s": 1.0}}),
            lambda m: m.pop("kernels"),
        ],
    )
    def test_rejects_malformed(self, mutate):
        manifest = _sample_manifest()
        mutate(manifest)
        with pytest.raises(InstrumentError):
            validate_manifest(manifest)


class TestWriteManifest:
    def test_writes_valid_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = _sample_manifest()
        write_manifest(path, manifest)
        recovered = json.loads(path.read_text())
        assert recovered == manifest

    def test_refuses_invalid(self, tmp_path):
        path = tmp_path / "manifest.json"
        with pytest.raises(InstrumentError):
            write_manifest(path, {"schema": "nope"})
        assert not path.exists()


class TestProfileTable:
    def test_hottest_span_first(self):
        registry = Registry()
        registry._record_span("cold", 0.001)
        registry._record_span("hot", 1.0)
        table = profile_table(registry.snapshot())
        assert table.index("hot") < table.index("cold")

    def test_includes_kernel_ops(self):
        table = profile_table(_sample_snapshot())
        assert "slew_limit" in table
        assert "numpy=3" in table

    def test_empty_snapshot(self):
        table = profile_table({"counters": {}, "spans": {}})
        assert "no spans" in table
