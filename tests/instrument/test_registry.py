"""Tests for the observability core: registry, spans, counters."""

import threading
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import instrument, kernels
from repro.instrument import Registry


@pytest.fixture(autouse=True)
def _clean_instrument_state():
    """Every test starts disabled with an empty global registry."""
    instrument.disable()
    instrument.get_registry().reset()
    yield
    instrument.disable()
    instrument.get_registry().reset()


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert not instrument.enabled()

    def test_disabled_records_nothing(self):
        instrument.count("never", 5)
        with instrument.span("ghost"):
            pass
        snap = instrument.get_registry().snapshot()
        assert snap == {"counters": {}, "spans": {}}

    def test_enable_records(self):
        instrument.enable()
        instrument.count("widgets", 2)
        instrument.count("widgets")
        with instrument.span("work"):
            pass
        snap = instrument.get_registry().snapshot()
        assert snap["counters"]["widgets"] == 3
        assert snap["spans"]["work"]["calls"] == 1
        assert snap["spans"]["work"]["total_s"] >= 0.0

    def test_disable_stops_recording(self):
        instrument.enable()
        instrument.count("widgets")
        instrument.disable()
        instrument.count("widgets")
        snap = instrument.get_registry().snapshot()
        assert snap["counters"]["widgets"] == 1

    def test_enabled_scope_restores(self):
        with instrument.enabled_scope(reset=True) as registry:
            assert instrument.enabled()
            instrument.count("inside")
        assert not instrument.enabled()
        assert registry.snapshot()["counters"]["inside"] == 1

    def test_disabled_span_is_shared_noop(self):
        assert instrument.span("a") is instrument.span("b")


class TestNestedSpans:
    def test_nesting_builds_paths(self):
        instrument.enable()
        with instrument.span("outer"):
            with instrument.span("inner"):
                pass
            with instrument.span("inner"):
                pass
        spans = instrument.get_registry().snapshot()["spans"]
        assert spans["outer"]["calls"] == 1
        assert spans["outer/inner"]["calls"] == 2
        assert "inner" not in spans

    def test_same_name_at_different_depths(self):
        instrument.enable()
        with instrument.span("stage"):
            with instrument.span("stage"):
                pass
        spans = instrument.get_registry().snapshot()["spans"]
        assert set(spans) == {"stage", "stage/stage"}

    def test_parent_time_covers_child(self):
        instrument.enable()
        with instrument.span("parent"):
            with instrument.span("child"):
                pass
        spans = instrument.get_registry().snapshot()["spans"]
        assert spans["parent"]["total_s"] >= spans["parent/child"]["total_s"]

    def test_span_records_on_exception(self):
        instrument.enable()
        with pytest.raises(RuntimeError):
            with instrument.span("fails"):
                raise RuntimeError("boom")
        spans = instrument.get_registry().snapshot()["spans"]
        assert spans["fails"]["calls"] == 1
        # The stack unwound, so a new span is recorded at top level.
        with instrument.span("after"):
            pass
        assert "after" in instrument.get_registry().snapshot()["spans"]


class TestRegistryMerge:
    def test_merge_adds_counters_and_spans(self):
        a = Registry()
        b = Registry()
        a.count("shared", 1)
        b.count("shared", 2)
        b.count("only_b", 5)
        with a.span("stage"):
            pass
        with b.span("stage"):
            pass
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["shared"] == 3
        assert snap["counters"]["only_b"] == 5
        assert snap["spans"]["stage"]["calls"] == 2

    def test_merge_empty_snapshot_is_noop(self):
        a = Registry()
        a.count("x")
        before = a.snapshot()
        a.merge({"counters": {}, "spans": {}})
        assert a.snapshot() == before

    def test_reset_clears(self):
        a = Registry()
        a.count("x")
        with a.span("y"):
            pass
        a.reset()
        assert a.snapshot() == {"counters": {}, "spans": {}}

    def test_thread_safety_of_counters(self):
        registry = Registry()

        def hammer():
            for _ in range(1000):
                registry.count("hits")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.snapshot()["counters"]["hits"] == 4000


def _pool_worker(n: int) -> dict:
    """Top-level so the process pool can pickle it (mirrors the
    experiment runner's worker-side collection)."""
    from repro import instrument as worker_instrument

    worker_instrument.get_registry().reset()
    worker_instrument.enable()
    worker_instrument.count("pool.items", n)
    with worker_instrument.span("pool_work"):
        pass
    return worker_instrument.get_registry().snapshot()


class TestProcessPoolAggregation:
    def test_counters_aggregate_across_workers(self):
        values = [1, 2, 3, 4]
        parent = Registry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for snapshot in pool.map(_pool_worker, values):
                parent.merge(snapshot)
        snap = parent.snapshot()
        assert snap["counters"]["pool.items"] == sum(values)
        assert snap["spans"]["pool_work"]["calls"] == len(values)


class TestKernelDispatchCounters:
    @pytest.fixture(params=kernels.available_backends())
    def backend(self, request):
        with kernels.use_backend(request.param) as name:
            yield name

    def test_records_op_samples_and_backend(self, backend):
        x = np.sin(np.linspace(0.0, 30.0, 500))
        with instrument.enabled_scope(reset=True) as registry:
            kernels.slew_limit(x, 0.05)
        counters = registry.snapshot()["counters"]
        assert counters["kernels.slew_limit.calls"] == 1
        assert counters["kernels.slew_limit.samples"] == 500
        assert counters["kernels.slew_limit.seconds"] > 0.0
        assert counters[f"kernels.backend.{backend}.calls"] == 1

    def test_disabled_dispatch_records_nothing(self, backend):
        x = np.sin(np.linspace(0.0, 30.0, 500))
        kernels.slew_limit(x, 0.05)
        assert instrument.get_registry().snapshot()["counters"] == {}

    def test_counters_agree_across_backends(self):
        """Same workload -> identical call/sample tallies per backend."""
        x = np.sin(np.linspace(0.0, 40.0, 800))
        ref_edges = np.arange(10, dtype=np.float64)
        out_edges = ref_edges + 0.25
        tallies = {}
        for name in kernels.available_backends():
            with kernels.use_backend(name):
                with instrument.enabled_scope(reset=True) as registry:
                    kernels.slew_limit(x, 0.05)
                    kernels.match_edges(ref_edges, out_edges, 0.25, 1.0)
                    kernels.hysteresis_crossings(x, 0.02)
                counters = registry.snapshot()["counters"]
            tallies[name] = {
                key: value
                for key, value in counters.items()
                if key.endswith(".calls") or key.endswith(".samples")
                if not key.startswith("kernels.backend.")
            }
        reference = tallies[kernels.available_backends()[0]]
        for name, tally in tallies.items():
            assert tally == reference, f"{name} disagrees: {tally}"


class TestRegistryScope:
    """The per-run scoping hook the campaign master daemon uses."""

    def test_counts_land_in_the_scoped_registry(self):
        private = Registry()
        before = instrument.get_registry()
        with instrument.registry_scope(private) as scoped:
            assert scoped is private
            assert instrument.get_registry() is private
            instrument.count("scope.test", 3)
        assert private.snapshot()["counters"] == {"scope.test": 3}
        # The previous registry is restored untouched.
        assert instrument.get_registry() is before
        assert "scope.test" not in before.snapshot()["counters"]

    def test_fresh_registry_by_default(self):
        with instrument.registry_scope() as scoped:
            instrument.count("scope.fresh")
            assert scoped.snapshot()["counters"] == {"scope.fresh": 1}

    def test_enabled_flag_restored(self):
        assert not instrument.enabled()
        with instrument.registry_scope():
            assert instrument.enabled()
        assert not instrument.enabled()

    def test_record_false_keeps_recording_off(self):
        with instrument.registry_scope(record=False) as scoped:
            instrument.count("scope.silent")
        assert scoped.snapshot()["counters"] == {}

    def test_scopes_isolate_sequential_runs(self):
        """Two runs, two registries, no cross-talk (the master's use)."""
        tallies = []
        for value in (2, 5):
            with instrument.registry_scope() as scoped:
                instrument.count("run.metric", value)
                tallies.append(
                    scoped.snapshot()["counters"]["run.metric"]
                )
        assert tallies == [2, 5]
