"""API-surface tests: public exports, cross-module behaviours, and
corner cases not owned by any single module's test file."""

import numpy as np
import pytest

import repro
from repro.circuits import (
    BufferParams,
    Chain,
    FanoutBuffer,
    NoiseSource,
    OutputBuffer,
    VariableGainBuffer,
)
from repro.core import CoarseDelayLine, FineDelayLine
from repro.errors import ReproError, WaveformError
from repro.signals import Waveform, synthesize_nrz


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        for module in (
            repro.signals,
            repro.jitter,
            repro.circuits,
            repro.core,
            repro.analysis,
            repro.ate,
            repro.baselines,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        for info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a docstring"

    def test_all_library_errors_catchable_as_reproerror(self):
        from repro import errors

        for name in errors.__all__:
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, ReproError)


class TestCrossModuleCorners:
    def test_output_buffer_custom_params(self, short_stimulus, rng):
        slow = BufferParams(slew_rate=20e9, compression_corner=25e9)
        buffer = OutputBuffer(amplitude=0.3, params=slow, seed=1)
        out = buffer.process(short_stimulus, rng)
        assert out.amplitude() == pytest.approx(0.3, rel=0.1)

    def test_fanout_many_outputs(self, short_stimulus, rng):
        fanout = FanoutBuffer(n_outputs=8, seed=2)
        assert len(fanout.copies(short_stimulus, rng)) == 8

    def test_coarse_line_custom_step(self, short_stimulus):
        from repro.analysis import measure_delay

        line = CoarseDelayLine(step=20e-12, n_taps=3, seed=3)
        outs = line.process_all_taps(
            short_stimulus, np.random.default_rng(0)
        )
        d0 = measure_delay(short_stimulus, outs[0]).delay
        d2 = measure_delay(short_stimulus, outs[2]).delay
        assert d2 - d0 == pytest.approx(40e-12, abs=4e-12)

    def test_chain_rng_threading_deterministic(self, short_stimulus):
        chain = Chain(
            VariableGainBuffer(seed=1), OutputBuffer(seed=2)
        )
        a = chain.process(short_stimulus, np.random.default_rng(7))
        b = chain.process(short_stimulus, np.random.default_rng(7))
        np.testing.assert_array_equal(a.values, b.values)

    def test_sine_injector_produces_periodic_jitter(self):
        from repro.core import FineDelayLine, JitterInjector
        from repro.experiments.common import steady_state
        from repro.jitter import (
            dominant_tone,
            jitter_spectrum,
            jittered_prbs,
            tie_from_edges,
        )
        from repro.signals.edges import auto_threshold, crossing_times

        stimulus = jittered_prbs(7, 400, 3.2e9, 1e-12)
        injector = JitterInjector(
            delay_line=FineDelayLine(seed=4),
            noise=NoiseSource(
                kind="sine", peak_to_peak=0.3, bandwidth=50e6, seed=5
            ),
            seed=6,
        )
        out = steady_state(
            injector.process(stimulus, np.random.default_rng(1))
        )
        edges = crossing_times(out, auto_threshold(out))
        tie = tie_from_edges(edges, 1 / 3.2e9)
        spectrum = jitter_spectrum(edges, tie, n_frequencies=96)
        frequency, _ = dominant_tone(spectrum, edges, tie)
        assert frequency == pytest.approx(50e6, rel=0.1)

    def test_eye_with_explicit_threshold(self):
        from repro.analysis import EyeDiagram
        from repro.jitter import jittered_prbs

        wf = jittered_prbs(7, 127, 2.4e9, 1e-12) + 1.0  # offset data
        eye = EyeDiagram(wf, 1 / 2.4e9, threshold=1.0)
        assert eye.metrics().eye_width > 0.9 / 2.4e9

    def test_noise_record_duration(self):
        record = NoiseSource(seed=1).record(1e-6, 1e-9)
        assert record.duration == pytest.approx(1e-6, rel=1e-6)

    def test_from_function_rejects_zero_duration(self):
        with pytest.raises(WaveformError):
            Waveform.from_function(np.sin, duration=-1.0, dt=0.5)

    def test_nrz_through_full_system_is_still_nrz(self, rng):
        # End to end: source -> coarse -> fine -> output recovers a
        # clean two-level signal (no mid-rail dwelling).
        from repro.core import CombinedDelayLine

        wf = synthesize_nrz([0, 1, 1, 0, 1, 0, 0, 1] * 4, 2.4e9, 1e-12)
        out = CombinedDelayLine(seed=5).process(wf, rng)
        values = out.values
        mid_rail = np.abs(values) < 0.1
        assert mid_rail.mean() < 0.15  # only transitions pass mid-rail
