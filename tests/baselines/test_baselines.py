"""Tests for the comparison systems."""

import numpy as np
import pytest

from repro.analysis import measure_delay, peak_to_peak_jitter
from repro.baselines import (
    IdealVariableDelay,
    QuantizedProgrammableDelay,
    TwoStageFineDelayLine,
)
from repro.core import FineDelayLine, TWO_STAGE_BUFFER
from repro.errors import DelayRangeError
from repro.signals import synthesize_clock


class TestTwoStageLine:
    def test_two_stages(self):
        assert TwoStageFineDelayLine(seed=1).n_stages == 2

    def test_uses_early_buffer_params(self):
        assert TwoStageFineDelayLine(seed=1).params is TWO_STAGE_BUFFER

    def test_smaller_range_than_four_stage(self, short_stimulus):
        def measured_range(line):
            line.vctrl = 0.0
            low = line.process(short_stimulus, np.random.default_rng(1))
            line.vctrl = 1.5
            high = line.process(short_stimulus, np.random.default_rng(1))
            return measure_delay(low, high).delay

        two = measured_range(TwoStageFineDelayLine(seed=1))
        four = measured_range(FineDelayLine(seed=1))
        assert two < 0.7 * four

    def test_collapses_at_high_frequency(self):
        # The early part is "ineffective beyond 6 GHz".
        clock = synthesize_clock(6.4e9, 150, 0.5e-12)
        line = TwoStageFineDelayLine(seed=1)
        line.vctrl = 0.0
        low = line.process(clock, np.random.default_rng(1))
        line.vctrl = 1.5
        high = line.process(clock, np.random.default_rng(1))
        assert measure_delay(low, high).delay < 12e-12


class TestQuantizedDelay:
    def test_quantizes_to_grid(self):
        delay = QuantizedProgrammableDelay(
            resolution=100e-12, linearity_error=0.0, seed=1
        )
        achieved = delay.set_delay(230e-12)
        assert achieved == pytest.approx(200e-12)

    def test_rounds_to_nearest(self):
        delay = QuantizedProgrammableDelay(
            resolution=100e-12, linearity_error=0.0, seed=1
        )
        assert delay.set_delay(260e-12) == pytest.approx(300e-12)

    def test_linearity_error_included(self):
        delay = QuantizedProgrammableDelay(
            resolution=100e-12, linearity_error=5e-12, seed=1
        )
        achieved = delay.set_delay(500e-12)
        assert achieved != pytest.approx(500e-12, abs=1e-15)
        assert achieved == pytest.approx(500e-12, abs=20e-12)

    def test_code_zero_exact(self):
        delay = QuantizedProgrammableDelay(linearity_error=5e-12, seed=1)
        assert delay.set_delay(0.0) == pytest.approx(0.0)

    def test_programming_error_bound(self):
        delay = QuantizedProgrammableDelay(
            resolution=100e-12, linearity_error=0.0, seed=1
        )
        for target in np.linspace(0, 1e-9, 23):
            assert abs(delay.programming_error(target)) <= 50e-12 + 1e-15

    def test_programming_error_preserves_state(self):
        delay = QuantizedProgrammableDelay(seed=1)
        delay.set_delay(300e-12)
        delay.programming_error(700e-12)
        assert delay.code == 3

    def test_process_shifts(self, short_stimulus):
        delay = QuantizedProgrammableDelay(linearity_error=0.0, seed=1)
        delay.set_delay(400e-12)
        out = delay.process(short_stimulus)
        assert measure_delay(short_stimulus, out).delay == pytest.approx(
            400e-12, abs=1e-15
        )

    def test_rejects_out_of_range(self):
        delay = QuantizedProgrammableDelay(max_delay=1e-9)
        with pytest.raises(DelayRangeError):
            delay.set_delay(2e-9)
        with pytest.raises(DelayRangeError):
            delay.set_delay(-1e-12)

    def test_rejects_bad_construction(self):
        with pytest.raises(DelayRangeError):
            QuantizedProgrammableDelay(resolution=0.0)
        with pytest.raises(DelayRangeError):
            QuantizedProgrammableDelay(
                resolution=100e-12, max_delay=50e-12
            )
        with pytest.raises(DelayRangeError):
            QuantizedProgrammableDelay(linearity_error=-1e-12)


class TestIdealDelay:
    def test_exact_delay(self, short_stimulus):
        ideal = IdealVariableDelay()
        ideal.set_delay(77.3e-12)
        out = ideal.process(short_stimulus)
        assert measure_delay(short_stimulus, out).delay == pytest.approx(
            77.3e-12, abs=1e-15
        )

    def test_adds_no_jitter(self, short_stimulus):
        ideal = IdealVariableDelay()
        ideal.set_delay(50e-12)
        out = ideal.process(short_stimulus)
        tj_in = peak_to_peak_jitter(short_stimulus, 1 / 2.4e9)
        tj_out = peak_to_peak_jitter(out, 1 / 2.4e9)
        assert tj_out == pytest.approx(tj_in, abs=1e-15)

    def test_range_limit(self):
        ideal = IdealVariableDelay(max_delay=140e-12)
        with pytest.raises(DelayRangeError):
            ideal.set_delay(150e-12)

    def test_rejects_bad_max(self):
        with pytest.raises(DelayRangeError):
            IdealVariableDelay(max_delay=0.0)
