"""Tests for the PLL/DLL-style clock-phase baseline."""

import numpy as np
import pytest

from repro.analysis import measure_delay
from repro.baselines import PhaseInterpolatorClockShifter, is_periodic_clock
from repro.errors import CircuitError
from repro.jitter import jittered_prbs
from repro.signals import synthesize_clock, synthesize_nrz


@pytest.fixture(scope="module")
def clock():
    return synthesize_clock(1e9, 20, 1e-12)


class TestIsPeriodicClock:
    def test_clock_is_periodic(self, clock):
        assert is_periodic_clock(clock)

    def test_prbs_is_not(self):
        data = jittered_prbs(7, 60, 2e9, 1e-12)
        assert not is_periodic_clock(data)

    def test_too_few_edges(self):
        wf = synthesize_nrz([0, 1], 1e9, 1e-12)
        assert not is_periodic_clock(wf)


class TestPhaseInterpolator:
    def test_quarter_turn_delays_quarter_period(self, clock):
        shifter = PhaseInterpolatorClockShifter(phase=np.pi / 2)
        out = shifter.process(clock)
        # Quarter of the 1 ns period = 250 ps.
        assert measure_delay(clock, out).delay == pytest.approx(
            250e-12, rel=0.02
        )

    def test_zero_phase_is_identity(self, clock):
        out = PhaseInterpolatorClockShifter(phase=0.0).process(clock)
        assert abs(measure_delay(clock, out).delay) < 1e-15

    def test_phase_wraps(self):
        shifter = PhaseInterpolatorClockShifter(phase=2.5 * np.pi)
        assert shifter.phase == pytest.approx(np.pi / 2)

    def test_phase_quantized_to_steps(self):
        shifter = PhaseInterpolatorClockShifter(n_steps=4)
        shifter.phase = 0.9  # nearest step on the pi/2 grid is pi/2
        assert shifter.phase == pytest.approx(np.pi / 2)

    def test_full_range(self, clock):
        # Unlike the paper's circuit (140 ps), the PI covers the whole
        # period — for clocks.
        shifter = PhaseInterpolatorClockShifter(phase=1.9 * np.pi)
        out = shifter.process(clock)
        assert measure_delay(clock, out).delay == pytest.approx(
            0.95e-9, rel=0.02
        )

    def test_refuses_data(self):
        data = jittered_prbs(7, 60, 2e9, 1e-12)
        with pytest.raises(CircuitError):
            PhaseInterpolatorClockShifter(phase=1.0).process(data)

    def test_rejects_too_few_steps(self):
        with pytest.raises(CircuitError):
            PhaseInterpolatorClockShifter(n_steps=2)

    def test_lock_period(self, clock):
        shifter = PhaseInterpolatorClockShifter()
        assert shifter.lock_period(clock) == pytest.approx(1e-9, rel=0.01)
