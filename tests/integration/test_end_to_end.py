"""Integration tests: full flows through the public API.

These exercise the same paths as the benchmark experiments but at
reduced sizes, so a plain ``pytest tests/`` run still covers every
figure's pipeline end to end.
"""

import numpy as np
import pytest

from repro import (
    CombinedDelayLine,
    EyeDiagram,
    FineDelayLine,
    JitterInjector,
    measure_delay,
    peak_to_peak_jitter,
)
from repro.circuits import NoiseSource
from repro.core import calibration_stimulus
from repro.experiments.common import steady_state
from repro.jitter import RandomJitter, jittered_prbs
from repro.signals import synthesize_clock


class TestQuickstartFlow:
    """The README quickstart must actually work."""

    def test_program_and_measure(self, short_stimulus):
        line = CombinedDelayLine(seed=42)
        line.calibrate(stimulus=short_stimulus, n_points=7)
        rng = np.random.default_rng(0)
        line.set_delay(0.0)
        base = measure_delay(
            short_stimulus, line.process(short_stimulus, rng)
        ).delay
        setting = line.set_delay(77e-12)
        assert setting.tap in range(4)
        achieved = (
            measure_delay(
                short_stimulus, line.process(short_stimulus, rng)
            ).delay
            - base
        )
        assert achieved == pytest.approx(77e-12, abs=6e-12)


class TestFig15Shape:
    def test_range_declines_with_frequency(self):
        line = FineDelayLine(seed=7)
        ranges = []
        for frequency in (1e9, 6.4e9):
            clock = synthesize_clock(
                frequency, max(60, int(25e-9 * frequency)), 0.5e-12
            )
            line.vctrl = 0.0
            low = line.process(clock, np.random.default_rng(1))
            line.vctrl = 1.5
            high = line.process(clock, np.random.default_rng(1))
            ranges.append(
                measure_delay(steady_state(low), steady_state(high)).delay
            )
        assert ranges[1] < 0.6 * ranges[0]


class TestJitterInjectionFlow:
    def test_injection_end_to_end(self):
        stimulus = jittered_prbs(7, 200, 3.2e9, 1e-12)
        injector = JitterInjector(
            delay_line=FineDelayLine(seed=3),
            noise=NoiseSource(peak_to_peak=0.9, seed=4),
            seed=5,
        )
        out = injector.process(stimulus, np.random.default_rng(1))
        ui = 1 / 3.2e9
        tj_in = peak_to_peak_jitter(steady_state(stimulus), ui)
        tj_out = peak_to_peak_jitter(steady_state(out), ui)
        assert tj_out > tj_in + 10e-12


class TestEyeThroughCircuit:
    def test_64gbps_eye_still_open(self):
        rj = RandomJitter(2e-12)
        stimulus = jittered_prbs(
            7, 300, 6.4e9, 1e-12, jitter=rj, rng=np.random.default_rng(2)
        )
        line = CombinedDelayLine(seed=9)
        line.vctrl = 0.75
        out = line.process(stimulus, np.random.default_rng(3))
        eye = EyeDiagram(steady_state(out), 1 / 6.4e9)
        metrics = eye.metrics()
        assert metrics.eye_width > 0.4 * (1 / 6.4e9)
        assert metrics.eye_height > 0.2

    def test_jitter_grows_through_circuit(self):
        stimulus = jittered_prbs(
            7,
            300,
            4.8e9,
            1e-12,
            jitter=RandomJitter(1.5e-12),
            rng=np.random.default_rng(2),
        )
        line = FineDelayLine(seed=9)
        line.vctrl = 0.75
        out = line.process(stimulus, np.random.default_rng(3))
        ui = 1 / 4.8e9
        assert peak_to_peak_jitter(
            steady_state(out), ui
        ) > peak_to_peak_jitter(steady_state(stimulus), ui)


class TestExperimentRunnersSmoke:
    """Each runner executes and passes its own checks in fast mode.

    The heavyweight ones (deskew, fig15) are covered by the benchmark
    suite; here we smoke-test a representative cheap subset on every
    plain pytest run.
    """

    @pytest.mark.parametrize(
        "name", ["fig04", "fig09", "app_resolution", "ablation_coarse_step"]
    )
    def test_runner_checks_pass(self, name):
        from repro.experiments import RUNNERS

        result = RUNNERS[name](fast=True)
        assert result.all_checks_pass, result.failed_checks()
        assert result.rows
