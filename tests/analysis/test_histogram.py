"""Tests for histogram utilities."""

import numpy as np
import pytest

from repro.analysis import Histogram, build_histogram
from repro.errors import MeasurementError


class TestBuildHistogram:
    def test_counts_sum(self, rng):
        samples = rng.normal(0, 1, 1000)
        hist = build_histogram(samples, n_bins=20)
        assert hist.n_samples == 1000

    def test_bin_count(self, rng):
        hist = build_histogram(rng.normal(0, 1, 100), n_bins=13)
        assert len(hist.counts) == 13
        assert len(hist.bin_edges) == 14

    def test_explicit_span(self, rng):
        hist = build_histogram(
            rng.uniform(-1, 1, 1000), n_bins=10, span=(-2.0, 2.0)
        )
        assert hist.bin_edges[0] == pytest.approx(-2.0)
        assert hist.bin_edges[-1] == pytest.approx(2.0)

    def test_identical_samples(self):
        hist = build_histogram(np.full(10, 3.0), n_bins=5)
        assert hist.n_samples == 10

    def test_rejects_empty(self):
        with pytest.raises(MeasurementError):
            build_histogram(np.array([]))

    def test_rejects_zero_bins(self):
        with pytest.raises(MeasurementError):
            build_histogram(np.array([1.0]), n_bins=0)


class TestHistogramStats:
    def test_mode_of_gaussian(self, rng):
        hist = build_histogram(rng.normal(5.0, 1.0, 50000), n_bins=50)
        assert hist.mode() == pytest.approx(5.0, abs=0.2)

    def test_mean_of_gaussian(self, rng):
        hist = build_histogram(rng.normal(5.0, 1.0, 50000), n_bins=50)
        assert hist.mean() == pytest.approx(5.0, abs=0.05)

    def test_density_integrates_to_one(self, rng):
        hist = build_histogram(rng.normal(0, 1, 10000), n_bins=40)
        integral = hist.density().sum() * hist.bin_width
        assert integral == pytest.approx(1.0, rel=1e-9)

    def test_percentile_median(self, rng):
        hist = build_histogram(rng.normal(0, 1, 50000), n_bins=100)
        assert hist.percentile(50) == pytest.approx(0.0, abs=0.1)

    def test_percentile_bounds(self, rng):
        hist = build_histogram(rng.uniform(0, 1, 1000), n_bins=20)
        with pytest.raises(MeasurementError):
            hist.percentile(101)

    def test_bin_centers(self):
        hist = Histogram(
            bin_edges=np.array([0.0, 1.0, 2.0]),
            counts=np.array([3, 5]),
        )
        np.testing.assert_allclose(hist.bin_centers, [0.5, 1.5])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(MeasurementError):
            Histogram(
                bin_edges=np.array([0.0, 1.0]), counts=np.array([1, 2])
            )
