"""Tests for eye rasterisation and mask testing."""

import numpy as np
import pytest

from repro.analysis import EyeDiagram, ascii_eye, mask_hits, rasterize_eye
from repro.errors import MeasurementError
from repro.jitter import jittered_prbs


UI = 1 / 2.4e9


@pytest.fixture(scope="module")
def eye():
    wf = jittered_prbs(7, 254, 2.4e9, 1e-12)
    return EyeDiagram(wf, UI)


@pytest.fixture(scope="module")
def raster(eye):
    return rasterize_eye(eye, n_phase=32, n_voltage=16)


class TestRasterize:
    def test_shape(self, raster):
        assert raster.shape == (16, 32)

    def test_counts_total(self, eye, raster):
        assert raster.counts.sum() == len(eye.waveform)

    def test_rails_populated(self, raster):
        # Top and bottom rows (the +-A rails) carry the most hits.
        row_sums = raster.counts.sum(axis=1)
        assert row_sums[0] > row_sums[len(row_sums) // 2]
        assert row_sums[-1] > row_sums[len(row_sums) // 2]

    def test_eye_centre_empty(self, raster):
        # The open eye: centre bins (mid phase, mid voltage) are empty.
        centre = raster.counts[6:10, 14:18]
        assert centre.sum() == 0

    def test_normalized_range(self, raster):
        normalised = raster.normalized()
        assert normalised.min() >= 0.0
        assert normalised.max() == pytest.approx(1.0)

    def test_rejects_tiny_bins(self, eye):
        with pytest.raises(MeasurementError):
            rasterize_eye(eye, n_phase=1)


class TestAsciiEye:
    def test_dimensions(self, raster):
        art = ascii_eye(raster)
        lines = art.split("\n")
        assert len(lines) == 16
        assert all(len(line) == 34 for line in lines)  # 32 + borders

    def test_empty_bins_are_spaces(self, raster):
        art = ascii_eye(raster)
        centre_row = art.split("\n")[8]
        assert " " in centre_row

    def test_rejects_short_shades(self, raster):
        with pytest.raises(MeasurementError):
            ascii_eye(raster, shades="#")


class TestMaskHits:
    def test_open_eye_mask_clean(self, raster):
        hits = mask_hits(
            raster, phase_range=(0.4, 0.6), voltage_range=(-0.15, 0.15)
        )
        assert hits == 0

    def test_full_mask_counts_everything(self, raster):
        hits = mask_hits(
            raster, phase_range=(0.0, 1.0), voltage_range=(-10.0, 10.0)
        )
        assert hits == raster.counts.sum()

    def test_crossing_region_has_hits(self, raster):
        hits = mask_hits(
            raster, phase_range=(0.0, 0.1), voltage_range=(-0.1, 0.1)
        )
        assert hits > 0

    def test_rejects_inverted_ranges(self, raster):
        with pytest.raises(MeasurementError):
            mask_hits(raster, (0.6, 0.4), (-0.1, 0.1))
