"""Tests for bathtub curves and BER-based eye openings."""

import numpy as np
import pytest

from repro.analysis import (
    BathtubCurve,
    bathtub_from_dual_dirac,
    eye_opening_at_ber,
)
from repro.errors import MeasurementError
from repro.jitter import DualDiracModel, q_ber


UI = 156.25e-12


@pytest.fixture
def rj_model():
    return DualDiracModel(
        rj_sigma=1e-12, dj_pp=0.0, mu_left=0.0, mu_right=0.0
    )


@pytest.fixture
def mixed_model():
    return DualDiracModel(
        rj_sigma=1e-12, dj_pp=4e-12, mu_left=-2e-12, mu_right=2e-12
    )


class TestBathtubConstruction:
    def test_ber_high_at_crossings(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI)
        assert curve.ber[0] > 0.2
        assert curve.ber[-1] > 0.2

    def test_ber_low_at_centre(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI)
        centre = curve.ber[len(curve.ber) // 2]
        assert centre < 1e-30

    def test_symmetric_for_symmetric_model(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI)
        np.testing.assert_allclose(curve.ber, curve.ber[::-1], rtol=1e-6)

    def test_transition_density_scales(self, rj_model):
        full = bathtub_from_dual_dirac(rj_model, UI, transition_density=1.0)
        half = bathtub_from_dual_dirac(rj_model, UI, transition_density=0.5)
        np.testing.assert_allclose(half.ber, full.ber / 2)

    def test_rejects_bad_ui(self, rj_model):
        with pytest.raises(MeasurementError):
            bathtub_from_dual_dirac(rj_model, -1.0)

    def test_rejects_zero_rj(self):
        model = DualDiracModel(
            rj_sigma=0.0, dj_pp=1e-12, mu_left=0.0, mu_right=1e-12
        )
        with pytest.raises(MeasurementError):
            bathtub_from_dual_dirac(model, UI)


class TestOpening:
    def test_opening_matches_closed_form(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI, n_points=4001)
        numeric = curve.opening(1e-12)
        analytic = eye_opening_at_ber(rj_model, UI, 1e-12)
        assert numeric == pytest.approx(analytic, abs=0.5e-12)

    def test_dj_shrinks_opening(self, rj_model, mixed_model):
        assert eye_opening_at_ber(mixed_model, UI) < eye_opening_at_ber(
            rj_model, UI
        )

    def test_closed_eye_reports_zero(self):
        model = DualDiracModel(
            rj_sigma=50e-12, dj_pp=0.0, mu_left=0.0, mu_right=0.0
        )
        assert eye_opening_at_ber(model, UI) == 0.0
        curve = bathtub_from_dual_dirac(model, UI)
        assert curve.opening(1e-12) == 0.0

    def test_centre_is_middle(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI)
        assert curve.centre(1e-12) == pytest.approx(UI / 2, rel=0.02)

    def test_centre_raises_when_closed(self):
        model = DualDiracModel(
            rj_sigma=50e-12, dj_pp=0.0, mu_left=0.0, mu_right=0.0
        )
        curve = bathtub_from_dual_dirac(model, UI)
        with pytest.raises(MeasurementError):
            curve.centre(1e-12)

    def test_opening_validates_ber(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI)
        with pytest.raises(MeasurementError):
            curve.opening(0.7)

    def test_opening_formula(self, mixed_model):
        expected = UI - 4e-12 - 2 * q_ber(1e-12) * 1e-12
        assert eye_opening_at_ber(mixed_model, UI, 1e-12) == pytest.approx(
            expected
        )
