"""Tests for bathtub curves and BER-based eye openings."""

import numpy as np
import pytest

from repro.analysis import (
    BathtubAccumulator,
    BathtubCurve,
    bathtub_from_dual_dirac,
    eye_opening_at_ber,
)
from repro.errors import MeasurementError
from repro.jitter import DualDiracModel, q_ber


UI = 156.25e-12


@pytest.fixture
def rj_model():
    return DualDiracModel(
        rj_sigma=1e-12, dj_pp=0.0, mu_left=0.0, mu_right=0.0
    )


@pytest.fixture
def mixed_model():
    return DualDiracModel(
        rj_sigma=1e-12, dj_pp=4e-12, mu_left=-2e-12, mu_right=2e-12
    )


class TestBathtubConstruction:
    def test_ber_high_at_crossings(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI)
        assert curve.ber[0] > 0.2
        assert curve.ber[-1] > 0.2

    def test_ber_low_at_centre(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI)
        centre = curve.ber[len(curve.ber) // 2]
        assert centre < 1e-30

    def test_symmetric_for_symmetric_model(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI)
        np.testing.assert_allclose(curve.ber, curve.ber[::-1], rtol=1e-6)

    def test_transition_density_scales(self, rj_model):
        full = bathtub_from_dual_dirac(rj_model, UI, transition_density=1.0)
        half = bathtub_from_dual_dirac(rj_model, UI, transition_density=0.5)
        np.testing.assert_allclose(half.ber, full.ber / 2)

    def test_rejects_bad_ui(self, rj_model):
        with pytest.raises(MeasurementError):
            bathtub_from_dual_dirac(rj_model, -1.0)

    def test_rejects_zero_rj(self):
        model = DualDiracModel(
            rj_sigma=0.0, dj_pp=1e-12, mu_left=0.0, mu_right=1e-12
        )
        with pytest.raises(MeasurementError):
            bathtub_from_dual_dirac(model, UI)


class TestOpening:
    def test_opening_matches_closed_form(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI, n_points=4001)
        numeric = curve.opening(1e-12)
        analytic = eye_opening_at_ber(rj_model, UI, 1e-12)
        assert numeric == pytest.approx(analytic, abs=0.5e-12)

    def test_dj_shrinks_opening(self, rj_model, mixed_model):
        assert eye_opening_at_ber(mixed_model, UI) < eye_opening_at_ber(
            rj_model, UI
        )

    def test_closed_eye_reports_zero(self):
        model = DualDiracModel(
            rj_sigma=50e-12, dj_pp=0.0, mu_left=0.0, mu_right=0.0
        )
        assert eye_opening_at_ber(model, UI) == 0.0
        curve = bathtub_from_dual_dirac(model, UI)
        assert curve.opening(1e-12) == 0.0

    def test_centre_is_middle(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI)
        assert curve.centre(1e-12) == pytest.approx(UI / 2, rel=0.02)

    def test_centre_raises_when_closed(self):
        model = DualDiracModel(
            rj_sigma=50e-12, dj_pp=0.0, mu_left=0.0, mu_right=0.0
        )
        curve = bathtub_from_dual_dirac(model, UI)
        with pytest.raises(MeasurementError):
            curve.centre(1e-12)

    def test_opening_validates_ber(self, rj_model):
        curve = bathtub_from_dual_dirac(rj_model, UI)
        with pytest.raises(MeasurementError):
            curve.opening(0.7)

    def test_opening_formula(self, mixed_model):
        expected = UI - 4e-12 - 2 * q_ber(1e-12) * 1e-12
        assert eye_opening_at_ber(mixed_model, UI, 1e-12) == pytest.approx(
            expected
        )


class TestOutlierRobustness:
    """Regression: a measured curve with a stray below-target dip
    outside the eye.  The old first-to-last-index span counted the
    closed region between the outlier and the real eye as open; the
    widest-contiguous-run rule must not."""

    def _curve_with_outlier(self):
        positions = np.linspace(0.0, UI, 101)
        ber = np.full(101, 0.3)
        ber[40:61] = 1e-15  # the real eye: 20 steps wide
        ber[3] = 1e-15  # a zero-error cell near the left crossing
        return BathtubCurve(
            positions=positions, ber=ber, unit_interval=UI
        )

    def test_opening_ignores_stray_outlier(self):
        curve = self._curve_with_outlier()
        step = UI / 100
        assert curve.opening(1e-12) == pytest.approx(20 * step)
        # The buggy span (index 3 .. index 60) would have been ~3x wider.
        assert curve.opening(1e-12) < 30 * step

    def test_centre_ignores_stray_outlier(self):
        curve = self._curve_with_outlier()
        assert curve.centre(1e-12) == pytest.approx(UI / 2, rel=0.01)

    def test_tie_goes_to_earliest_run(self):
        positions = np.linspace(0.0, UI, 11)
        ber = np.full(11, 0.3)
        ber[1:3] = 1e-15
        ber[7:9] = 1e-15
        curve = BathtubCurve(positions=positions, ber=ber, unit_interval=UI)
        assert curve.centre(1e-12) == pytest.approx(
            (positions[1] + positions[2]) / 2
        )


class TestAccumulator:
    def test_fold_matches_single_shot(self):
        positions = np.linspace(0.0, UI, 5)
        chunked = BathtubAccumulator(positions, UI)
        whole = BathtubAccumulator(positions, UI)
        tallies = [(0, 100, 30), (0, 50, 20), (2, 1000, 0), (4, 10, 5)]
        for index, bits, errors in tallies:
            chunked.add(index, bits, errors)
        whole.add(0, 150, 50)
        whole.add(2, 1000, 0)
        whole.add(4, 10, 5)
        np.testing.assert_array_equal(
            chunked.curve().ber, whole.curve().ber
        )
        assert chunked.total_bits == 1160

    def test_merge_combines_workers(self):
        positions = np.linspace(0.0, UI, 3)
        a = BathtubAccumulator(positions, UI)
        b = BathtubAccumulator(positions, UI)
        a.add(0, 100, 1)
        b.add(0, 100, 3)
        b.add(1, 40, 0)
        a.merge(b)
        curve = a.curve()
        assert curve.ber[0] == pytest.approx(4 / 200)
        assert curve.ber[1] == 0.0

    def test_merge_rejects_mismatched_grid(self):
        a = BathtubAccumulator(np.linspace(0.0, UI, 3), UI)
        b = BathtubAccumulator(np.linspace(0.0, UI, 5), UI)
        with pytest.raises(MeasurementError):
            a.merge(b)

    def test_unmeasured_positions_report_ber_one(self):
        acc = BathtubAccumulator(np.linspace(0.0, UI, 4), UI)
        acc.add(1, 10, 0)
        ber = acc.curve().ber
        assert ber[0] == 1.0
        assert ber[1] == 0.0
        assert ber[2] == 1.0

    def test_rejects_invalid_tallies(self):
        acc = BathtubAccumulator(np.linspace(0.0, UI, 4), UI)
        with pytest.raises(MeasurementError):
            acc.add(0, 10, 11)
        with pytest.raises(MeasurementError):
            acc.add(0, -1, 0)

    def test_rejects_empty_grid(self):
        with pytest.raises(MeasurementError):
            BathtubAccumulator(np.empty(0), UI)
