"""Tests for eye-diagram construction and metrics."""

import numpy as np
import pytest

from repro.analysis import EyeDiagram
from repro.errors import InsufficientEdgesError, MeasurementError
from repro.jitter import DutyCycleDistortion, RandomJitter, jittered_prbs
from repro.signals import synthesize_nrz


UI = 1 / 2.4e9


@pytest.fixture(scope="module")
def clean_eye():
    wf = jittered_prbs(7, 254, 2.4e9, 1e-12)
    return EyeDiagram(wf, UI)


@pytest.fixture(scope="module")
def jittery_eye():
    wf = jittered_prbs(
        7,
        254,
        2.4e9,
        1e-12,
        jitter=RandomJitter(2e-12),
        rng=np.random.default_rng(8),
    )
    return EyeDiagram(wf, UI)


class TestConstruction:
    def test_recovered_ui(self, clean_eye):
        assert clean_eye.clock.period == pytest.approx(UI, rel=1e-6)

    def test_requires_enough_edges(self):
        wf = synthesize_nrz([0, 1], 2.4e9, 1e-12)
        with pytest.raises(InsufficientEdgesError):
            EyeDiagram(wf, UI)

    def test_rejects_bad_ui(self):
        wf = jittered_prbs(7, 60, 2.4e9, 1e-12)
        with pytest.raises(MeasurementError):
            EyeDiagram(wf, -1.0)


class TestMetrics:
    def test_clean_eye_nearly_full_width(self, clean_eye):
        metrics = clean_eye.metrics()
        assert metrics.eye_width > 0.98 * UI
        assert metrics.total_jitter_pp < 0.02 * UI

    def test_jitter_shrinks_width(self, clean_eye, jittery_eye):
        assert jittery_eye.eye_width() < clean_eye.eye_width()

    def test_tj_matches_injected(self, jittery_eye):
        # ~127 edges of 2 ps RJ: expected p-p around 2*sqrt(2 ln127)*2ps.
        expected = 2 * np.sqrt(2 * np.log(127)) * 2e-12
        assert jittery_eye.total_jitter_pp() == pytest.approx(
            expected, rel=0.4
        )

    def test_rms_jitter(self, jittery_eye):
        assert jittery_eye.rms_jitter() == pytest.approx(2e-12, rel=0.25)

    def test_eye_height_positive_open_eye(self, clean_eye):
        assert clean_eye.eye_height() > 0.5  # ~0.8 V differential opening

    def test_eye_height_window_validation(self, clean_eye):
        with pytest.raises(MeasurementError):
            clean_eye.eye_height(window=0.7)

    def test_amplitude(self, clean_eye):
        assert clean_eye.metrics().amplitude == pytest.approx(0.4, rel=0.05)

    def test_crossing_fraction_centred(self, clean_eye):
        assert clean_eye.crossing_fraction() == pytest.approx(0.5, abs=0.02)

    def test_dcd_shifts_crossings_apart(self):
        wf = jittered_prbs(
            7,
            254,
            2.4e9,
            1e-12,
            jitter=DutyCycleDistortion(8e-12),
            rng=np.random.default_rng(1),
        )
        eye = EyeDiagram(wf, UI)
        # DCD splits rising/falling populations: TJ pp ~ the DCD.
        assert eye.total_jitter_pp() == pytest.approx(8e-12, rel=0.15)

    def test_phases_in_unit_range(self, clean_eye):
        phases = clean_eye.phases()
        assert phases.min() >= 0.0
        assert phases.max() < 1.0

    def test_folded_shapes(self, clean_eye):
        phases, values = clean_eye.folded()
        assert phases.shape == values.shape

    def test_metrics_n_edges(self, clean_eye):
        assert clean_eye.metrics().n_edges == len(clean_eye.edges)
