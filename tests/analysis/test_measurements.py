"""Tests for scope-style measurements."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    coarse_delay_estimate,
    measure_delay,
    measure_amplitude,
    peak_to_peak_jitter,
    rise_time_20_80,
    rms_jitter,
)
from repro.errors import InsufficientEdgesError, MeasurementError
from repro.jitter import RandomJitter, jittered_prbs
from repro.signals import Waveform, synthesize_nrz


@pytest.fixture(scope="module")
def prbs():
    return synthesize_nrz(
        [0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1, 1] * 4, 2.4e9, 1e-12
    )


class TestCoarseDelayEstimate:
    def test_recovers_shift(self, prbs):
        shifted = prbs.shifted(200e-12)
        estimate = coarse_delay_estimate(prbs, shifted)
        assert estimate == pytest.approx(200e-12, abs=2e-12)

    def test_large_shift(self, prbs):
        shifted = prbs.shifted(2e-9)
        estimate = coarse_delay_estimate(prbs, shifted)
        assert estimate == pytest.approx(2e-9, abs=2e-12)

    def test_dt_mismatch_raises(self, prbs):
        other = prbs.resampled(2e-12)
        with pytest.raises(MeasurementError):
            coarse_delay_estimate(prbs, other)


class TestMeasureDelay:
    def test_exact_shift(self, prbs):
        result = measure_delay(prbs, prbs.shifted(77e-12))
        assert result.delay == pytest.approx(77e-12, abs=1e-15)
        assert result.std == pytest.approx(0.0, abs=1e-15)

    def test_subsample_shift(self, prbs):
        result = measure_delay(prbs, prbs.delayed(0.4e-12))
        assert result.delay == pytest.approx(0.4e-12, abs=0.05e-12)

    def test_edge_count(self, prbs):
        result = measure_delay(prbs, prbs.shifted(10e-12))
        # All pattern transitions should pair up.
        assert result.n_edges >= 30

    def test_delay_larger_than_ui(self, prbs):
        # Correlation seeding disambiguates delays beyond one UI.
        result = measure_delay(prbs, prbs.shifted(1.3e-9))
        assert result.delay == pytest.approx(1.3e-9, abs=1e-15)

    def test_attenuated_copy(self, prbs):
        # Per-trace auto thresholds handle attenuation.
        result = measure_delay(prbs, (prbs * 0.3).shifted(50e-12))
        assert result.delay == pytest.approx(50e-12, abs=0.2e-12)

    def test_explicit_coarse_estimate(self, prbs):
        result = measure_delay(prbs, prbs.shifted(90e-12), coarse=90e-12)
        assert result.delay == pytest.approx(90e-12, abs=1e-15)

    def test_rising_only(self, prbs):
        result = measure_delay(
            prbs, prbs.shifted(10e-12), direction="rising"
        )
        assert result.delay == pytest.approx(10e-12, abs=1e-15)

    def test_no_edges_raises(self):
        flat = Waveform.constant(0.4, 1e-9, 1e-12)
        with pytest.raises(InsufficientEdgesError):
            measure_delay(flat, flat)

    def test_std_reflects_jitter(self, prbs, rng):
        # Jitter only the output edges: std grows.
        noisy = jittered_prbs(
            7, 64, 2.4e9, 1e-12, jitter=RandomJitter(2e-12), rng=rng
        )
        clean = jittered_prbs(7, 64, 2.4e9, 1e-12)
        result = measure_delay(clean, noisy)
        assert result.std == pytest.approx(2e-12, rel=0.4)

    @given(st.floats(min_value=-400e-12, max_value=400e-12))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, delay):
        wf = synthesize_nrz([0, 1, 1, 0, 1, 0, 0, 1] * 2, 2.4e9, 1e-12)
        result = measure_delay(wf, wf.shifted(delay))
        assert result.delay == pytest.approx(delay, abs=1e-15)


def _toggle_waveform(edge_times, dt=1e-12, ramp=None):
    """Square wave toggling at *edge_times* with linear 0-crossings.

    Each transition is a linear ramp of half-width *ramp* centred on
    the edge time, so linear-interpolation crossing extraction recovers
    the edge positions exactly.
    """
    edge_times = np.asarray(edge_times, dtype=np.float64)
    if ramp is None:
        ramp = dt
    xs = [0.0]
    ys = [-1.0]
    level = -1.0
    for te in edge_times:
        xs.extend([te - ramp, te + ramp])
        ys.extend([level, -level])
        level = -level
    t_end = edge_times[-1] + 10 * dt
    xs.append(t_end)
    ys.append(level)
    t = dt * np.arange(int(round(t_end / dt)) + 1)
    return Waveform(np.interp(t, xs, ys), dt, 0.0)


class TestDroppedEdgeMatching:
    """Regression: matching must be one-to-one.

    The pre-fix matcher assigned each reference edge to the nearest
    output edge independently.  When the output trace dropped an edge,
    the orphaned reference edge was matched to a *neighbour's* output
    edge (which was also granted to its true owner), adding a spurious
    ~±T delta and biasing the mean delay by T / n_edges — 10 ps here.
    """

    PERIOD = 100e-12
    DELAY = 40.3e-12

    def _traces(self):
        ref_edges = 50e-12 + self.PERIOD * np.arange(10)
        out_edges = np.delete(ref_edges + self.DELAY, 5)
        return _toggle_waveform(ref_edges), _toggle_waveform(out_edges)

    def test_dropped_output_edge_does_not_bias_mean(self):
        reference, delayed = self._traces()
        result = measure_delay(
            reference,
            delayed,
            threshold=0.0,
            coarse=self.DELAY,
            max_edge_offset=1.5 * self.PERIOD,
        )
        # Pre-fix: n_edges == 10 with one delta off by a full period,
        # mean biased by ~10 ps.  Post-fix: the orphan loses the greedy
        # tie for its neighbour's edge and is simply dropped.
        assert result.n_edges == 9
        assert result.delay == pytest.approx(self.DELAY, abs=1e-13)
        assert result.std == pytest.approx(0.0, abs=1e-13)

    def test_dropped_reference_edge_symmetric(self):
        reference, delayed = self._traces()
        # Swap roles: extra edge in the "output" relative to reference.
        result = measure_delay(
            delayed,
            reference,
            threshold=0.0,
            coarse=-self.DELAY,
            max_edge_offset=1.5 * self.PERIOD,
        )
        assert result.n_edges == 9
        assert result.delay == pytest.approx(-self.DELAY, abs=1e-13)

    def test_each_output_edge_granted_once(self):
        # Two reference edges compete for a single output edge: only
        # the closer one may win.
        reference = _toggle_waveform([100e-12, 200e-12])
        delayed = _toggle_waveform([205e-12])
        result = measure_delay(
            reference,
            delayed,
            threshold=0.0,
            coarse=0.0,
            max_edge_offset=150e-12,
        )
        assert result.n_edges == 1
        assert result.delay == pytest.approx(5e-12, abs=1e-13)


class TestJitterMeasurements:
    def test_clean_signal_near_zero(self, prbs):
        tj = peak_to_peak_jitter(prbs, 1 / 2.4e9)
        assert tj < 0.3e-12

    def test_known_rj(self, rng):
        wf = jittered_prbs(
            7, 800, 2.4e9, 1e-12, jitter=RandomJitter(2e-12), rng=rng
        )
        sigma = rms_jitter(wf, 1 / 2.4e9)
        assert sigma == pytest.approx(2e-12, rel=0.15)

    def test_pp_exceeds_rms(self, rng):
        wf = jittered_prbs(
            7, 400, 2.4e9, 1e-12, jitter=RandomJitter(2e-12), rng=rng
        )
        pp = peak_to_peak_jitter(wf, 1 / 2.4e9)
        sigma = rms_jitter(wf, 1 / 2.4e9)
        assert pp > 4 * sigma

    def test_too_few_edges(self):
        wf = synthesize_nrz([0, 1], 1e9, 1e-12)
        with pytest.raises(InsufficientEdgesError):
            peak_to_peak_jitter(wf, 1e-9)


class TestAmplitudeAndRise:
    def test_amplitude(self, prbs):
        assert measure_amplitude(prbs) == pytest.approx(0.4, rel=0.03)

    def test_rise_time(self):
        wf = synthesize_nrz(
            [0, 1, 1, 0, 0, 1], 1e9, 0.5e-12, rise_time=40e-12
        )
        assert rise_time_20_80(wf) == pytest.approx(40e-12, rel=0.1)

    def test_rise_time_no_edges(self):
        flat = Waveform.constant(0.4, 1e-9, 1e-12)
        with pytest.raises(MeasurementError):
            rise_time_20_80(flat)
