"""Tests for the streaming-BERT experiment helpers.

The regression here is the ``ru_maxrss`` unit: ``getrusage(2)`` leaves
it platform-defined — KiB on Linux, *bytes* on macOS — so the MiB
conversion must branch on the platform.  Pre-fix code divided by 1024
unconditionally, over-reporting Darwin RSS 1024x (and spuriously
tripping ``--rss-limit-mb`` ceilings).
"""

import resource
from collections import namedtuple

import pytest

from repro.experiments import stream_bert

_FakeUsage = namedtuple("_FakeUsage", ["ru_maxrss"])


def _fake_getrusage(ru_maxrss):
    def getrusage(who):
        assert who == resource.RUSAGE_SELF
        return _FakeUsage(ru_maxrss)

    return getrusage


class TestPeakRssMb:
    def test_linux_reports_kib(self, monkeypatch):
        """On Linux ru_maxrss is KiB: 512 MiB -> 524288 KiB."""
        monkeypatch.setattr(stream_bert.sys, "platform", "linux")
        monkeypatch.setattr(
            stream_bert.resource, "getrusage", _fake_getrusage(524288)
        )
        assert stream_bert._peak_rss_mb() == pytest.approx(512.0)

    def test_darwin_reports_bytes(self, monkeypatch):
        """On macOS ru_maxrss is bytes: 512 MiB -> 536870912 bytes.

        Pre-fix code divided by 1024 unconditionally and returned
        524288.0 ("512 GiB") here — a 1024x over-report.
        """
        monkeypatch.setattr(stream_bert.sys, "platform", "darwin")
        monkeypatch.setattr(
            stream_bert.resource,
            "getrusage",
            _fake_getrusage(512 * 1024 * 1024),
        )
        assert stream_bert._peak_rss_mb() == pytest.approx(512.0)

    def test_darwin_rss_limit_not_spuriously_tripped(self, monkeypatch):
        """A Darwin process well under the ceiling must read as under.

        The production symptom of the bug: a 197 MiB streaming run
        with ``--rss-limit-mb 2048`` hard-failed on macOS because the
        helper reported ~201728 MiB.
        """
        monkeypatch.setattr(stream_bert.sys, "platform", "darwin")
        monkeypatch.setattr(
            stream_bert.resource,
            "getrusage",
            _fake_getrusage(197 * 1024 * 1024),
        )
        assert stream_bert._peak_rss_mb() < 2048.0

    def test_real_process_rss_is_sane(self):
        """Unpatched: this test process is between 1 MiB and 100 GiB."""
        peak = stream_bert._peak_rss_mb()
        assert 1.0 < peak < 100.0 * 1024
