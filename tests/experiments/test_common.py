"""Tests for the experiment scaffolding."""

import pytest

from repro.errors import MeasurementError
from repro.experiments.common import (
    ExperimentResult,
    format_ps,
    steady_state,
)
from repro.signals import Waveform


class TestSteadyState:
    def test_drops_warmup(self):
        wf = Waveform.constant(0.4, 10e-9, 1e-12)
        settled = steady_state(wf, warmup=3e-9)
        assert settled.t0 == pytest.approx(3e-9)
        assert settled.t_end == pytest.approx(wf.t_end)

    def test_too_short_record_raises(self):
        wf = Waveform.constant(0.4, 1e-9, 1e-12)
        with pytest.raises(MeasurementError):
            steady_state(wf, warmup=3e-9)


class TestFormatPs:
    def test_basic(self):
        assert format_ps(33e-12) == "33.0 ps"

    def test_digits(self):
        assert format_ps(1.2345e-12, digits=2) == "1.23 ps"


class TestExperimentResult:
    def test_add_row_and_format(self):
        result = ExperimentResult("figX", "demo")
        result.add_row(a=1, b="x")
        result.add_row(a=2, b="y")
        table = result.format_table()
        assert "figX" in table
        assert "demo" in table
        assert "x" in table and "y" in table

    def test_empty_table(self):
        result = ExperimentResult("figX", "demo")
        assert "(no rows)" in result.format_table()

    def test_checks_recorded(self):
        result = ExperimentResult("figX", "demo")
        result.add_check("good", True)
        result.add_check("bad", False)
        assert not result.all_checks_pass
        assert result.failed_checks() == ["bad"]
        table = result.format_table()
        assert "[PASS] good" in table
        assert "[FAIL] bad" in table

    def test_all_pass(self):
        result = ExperimentResult("figX", "demo")
        result.add_check("one", True)
        assert result.all_checks_pass
        assert result.failed_checks() == []

    def test_notes_rendered(self):
        result = ExperimentResult("figX", "demo", notes="hello world")
        result.add_row(a=1)
        assert "hello world" in result.format_table()

    def test_float_rendering(self):
        result = ExperimentResult("figX", "demo")
        result.add_row(value=1.23456789)
        assert "1.23" in result.format_table()


class TestRegistry:
    def test_all_runners_registered(self):
        from repro.experiments import RUNNERS

        expected = {
            "fig04", "fig07", "fig09", "fig10", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17", "app_deskew",
            "app_resolution", "ablation_stages",
            "ablation_coarse_step", "ablation_model", "ablation_tj_depth",
            "ext_sj", "ext_per_stage", "ext_drift",
            "ext_clock_centering", "ext_clock_only",
            "ext_fast_deskew", "stream_bert",
        }
        assert expected == set(RUNNERS)

    def test_runners_callable(self):
        from repro.experiments import RUNNERS

        for runner in RUNNERS.values():
            assert callable(runner)


class TestMarkdownRendering:
    def test_markdown_table(self):
        result = ExperimentResult("figX", "demo")
        result.add_row(a=1, b="x")
        result.add_check("good", True)
        result.add_check("bad", False)
        markdown = result.format_markdown()
        assert "## `figX` — demo" in markdown
        assert "| a | b |" in markdown
        assert "- [x] good" in markdown
        assert "- [ ] bad" in markdown

    def test_markdown_notes(self):
        result = ExperimentResult("figX", "demo", notes="caveat emptor")
        assert "> caveat emptor" in result.format_markdown()
