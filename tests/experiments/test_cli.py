"""Tests for the ``python -m repro.experiments`` command line."""

import json

import pytest

from repro import instrument
from repro.experiments.__main__ import main
from repro.instrument import validate_manifest
from repro.kernels import BACKEND_NAMES


class TestCli:
    def test_runs_selected_experiment(self, capsys):
        exit_code = main(["--fast", "--only", "app_resolution"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "app_resolution" in captured.out
        assert "[PASS]" in captured.out

    def test_multiple_selection(self, capsys):
        exit_code = main(["--fast", "--only", "fig09,app_resolution"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "fig09" in captured.out
        assert "app_resolution" in captured.out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--only", "fig99"])
        assert excinfo.value.code == 2  # argparse usage error

    @pytest.mark.parametrize("jobs", ["0", "-2"])
    def test_rejects_bad_jobs(self, capsys, jobs):
        exit_code = main(["--fast", "--jobs", jobs])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert f"error: --jobs must be >= 1, got {jobs}" in captured.err

    def test_unknown_experiment_message_lists_valid_ids(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "fig99"])
        captured = capsys.readouterr()
        assert "unknown experiment id 'fig99'" in captured.err
        assert "valid ids:" in captured.err
        # Every registered experiment is named, so the user can pick one.
        from repro.experiments import RUNNERS

        for name in RUNNERS:
            assert name in captured.err

    def test_typo_gets_did_you_mean_hint(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "fig9"])
        captured = capsys.readouterr()
        assert "did you mean" in captured.err

    def test_empty_only_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--only", ","])
        assert excinfo.value.code == 2

    def test_help_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestMarkdownFlag:
    def test_markdown_output(self, capsys):
        exit_code = main(["--fast", "--markdown", "--only", "app_resolution"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "## `app_resolution`" in captured.out
        assert "- [x]" in captured.out


class TestStreamFlag:
    # One PRBS7 period per chunk and a handful of chunks keeps this a
    # seconds-scale run while still exercising the real pipeline.
    ARGS = ["--stream", "--chunk-bits", "500", "--total-bits", "2000"]

    def test_stream_mode_runs_and_passes(self, capsys):
        exit_code = main(self.ARGS + ["--rss-limit-mb", "4096"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "stream_bert" in captured.out
        assert "peak RSS" in captured.out
        assert "[PASS]" in captured.out
        assert "[FAIL]" not in captured.out

    def test_rss_ceiling_failure_sets_exit_code(self, capsys):
        # An impossible ceiling: the check fails, the run exits 1.
        exit_code = main(self.ARGS + ["--rss-limit-mb", "1"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "[FAIL]" in captured.out

    def test_stream_markdown_output(self, capsys):
        exit_code = main(self.ARGS + ["--markdown"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "## `stream_bert`" in captured.out

    def test_stream_metrics_manifest(self, tmp_path):
        path = tmp_path / "metrics.json"
        exit_code = main(self.ARGS + ["--metrics-json", str(path)])
        assert exit_code == 0
        data = json.loads(path.read_text())
        validate_manifest(data)
        assert data["experiments"][0]["id"] == "stream_bert"
        assert any("stream.chunk" in span for span in data["spans"])
        assert not instrument.enabled()

    def test_stream_rejects_only(self):
        with pytest.raises(SystemExit):
            main(["--stream", "--only", "fig09"])

    def test_chunk_bits_requires_stream(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--chunk-bits", "1024"])
        assert excinfo.value.code == 2

    def test_registry_entry_runs_fast(self):
        from repro.experiments import RUNNERS

        result = RUNNERS["stream_bert"](fast=True)
        assert result.all_checks_pass


class TestMetricsFlags:
    def test_metrics_json_writes_valid_manifest(self, tmp_path):
        path = tmp_path / "metrics.json"
        exit_code = main(
            [
                "--fast",
                "--only",
                "app_resolution",
                "--metrics-json",
                str(path),
            ]
        )
        assert exit_code == 0
        data = json.loads(path.read_text())
        validate_manifest(data)
        assert data["fast"] is True
        assert data["kernel_backend"] in BACKEND_NAMES
        entry = data["experiments"][0]
        assert entry["id"] == "app_resolution"
        assert entry["checks_passed"] is True
        assert entry["duration_s"] > 0.0
        # Per-stage wall times under the experiment's own span tree.
        assert "experiment.app_resolution" in data["spans"]
        assert any(
            span.startswith("experiment.app_resolution/")
            for span in data["spans"]
        )
        # Kernel dispatch counters made it into the manifest.
        assert data["kernels"]["ops"]
        assert data["kernels"]["backend_calls"]
        # The CLI restores the disabled default.
        assert not instrument.enabled()

    def test_profile_prints_hotspot_table(self, capsys):
        exit_code = main(["--fast", "--only", "app_resolution", "--profile"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "profile: stage spans" in captured.out
        assert "experiment.app_resolution" in captured.out

    def test_jobs_pool_aggregates_metrics(self, tmp_path):
        path = tmp_path / "metrics.json"
        exit_code = main(
            [
                "--fast",
                "--jobs",
                "2",
                "--only",
                "fig09,app_resolution",
                "--metrics-json",
                str(path),
            ]
        )
        assert exit_code == 0
        data = json.loads(path.read_text())
        validate_manifest(data)
        assert data["jobs"] == 2
        assert [e["id"] for e in data["experiments"]] == [
            "fig09",
            "app_resolution",
        ]
        # Both workers' snapshots were merged into one registry.
        assert "experiment.fig09" in data["spans"]
        assert "experiment.app_resolution" in data["spans"]
        assert data["kernels"]["ops"]
