"""Tests for the ``python -m repro.experiments`` command line."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_runs_selected_experiment(self, capsys):
        exit_code = main(["--fast", "--only", "app_resolution"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "app_resolution" in captured.out
        assert "[PASS]" in captured.out

    def test_multiple_selection(self, capsys):
        exit_code = main(["--fast", "--only", "fig09,app_resolution"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "fig09" in captured.out
        assert "app_resolution" in captured.out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--only", "fig99"])
        assert excinfo.value.code == 2  # argparse usage error

    def test_help_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestMarkdownFlag:
    def test_markdown_output(self, capsys):
        exit_code = main(["--fast", "--markdown", "--only", "app_resolution"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "## `app_resolution`" in captured.out
        assert "- [x]" in captured.out
