"""Tests for the campaign yield-report layer."""

import json

import pytest

from repro.campaign import (
    CAMPAIGN_REPORT_SCHEMA,
    CAMPAIGN_REPORT_VERSION,
    SPEC_LINES,
    CampaignSpec,
    build_report,
    format_report,
    run_campaign,
    validate_report,
    write_report,
)
from repro.campaign.report import SpecLine, _percentile
from repro.campaign.spec import canonical_json
from repro.errors import CampaignError


@pytest.fixture(scope="module")
def result():
    spec = CampaignSpec.from_dict(
        {
            "name": "report-tiny",
            "scenario": "range",
            "seed": 31,
            "n_instances": 2,
            "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
            "sweeps": [
                {"name": "bit_rate", "values": ["2.4 Gbps", "4.8 Gbps"]}
            ],
        }
    )
    return run_campaign(spec, jobs=1)


@pytest.fixture(scope="module")
def report(result):
    return build_report(result)


class TestSpecLines:
    def test_paper_limits(self):
        by_name = {line.name: line for line in SPEC_LINES}
        assert by_name["skew"].limit == pytest.approx(5e-12)
        assert by_name["added_jitter"].limit == pytest.approx(5e-12)
        assert by_name["range"].limit == pytest.approx(120e-12)

    def test_pass_direction(self):
        maximum = SpecLine("m", "x", 5e-12, "max", "")
        minimum = SpecLine("n", "x", 120e-12, "min", "")
        assert maximum.passes(4e-12) and not maximum.passes(6e-12)
        assert minimum.passes(140e-12) and not minimum.passes(100e-12)


class TestPercentile:
    def test_interpolates(self):
        assert _percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)

    def test_endpoints(self):
        values = [1.0, 2.0, 3.0]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 100.0) == 3.0

    def test_single_sample(self):
        assert _percentile([7.0], 99.0) == 7.0


class TestBuildReport:
    def test_schema_and_version(self, report):
        assert report["schema"] == CAMPAIGN_REPORT_SCHEMA
        assert report["version"] == CAMPAIGN_REPORT_VERSION
        validate_report(report)

    def test_yield_section(self, report):
        lines = {entry["name"]: entry for entry in report["payload"]["spec_lines"]}
        range_line = lines["range"]
        assert range_line["n_evaluated"] == 4
        assert 0.0 <= range_line["yield_fraction"] <= 1.0
        assert range_line["worst"]["index"] in range(4)
        # No deskew metrics in a range campaign: line not evaluated.
        assert lines["skew"]["n_evaluated"] == 0
        assert lines["skew"]["yield_fraction"] is None

    def test_percentiles_sorted(self, report):
        entry = report["payload"]["percentiles"]["total_range_s"]
        assert entry["min"] <= entry["p50"] <= entry["p90"] <= entry["max"]
        assert entry["n"] == 4

    def test_by_sweep_grouping(self, report):
        groups = report["payload"]["by_sweep"]["bit_rate"]
        assert len(groups) == 2
        for entries in groups.values():
            assert entries["range"]["n_evaluated"] == 2

    def test_points_in_expansion_order(self, report):
        indices = [p["index"] for p in report["payload"]["points"]]
        assert indices == sorted(indices)

    def test_incomplete_campaign_rejected(self, result):
        """A partial result keeps alignment and is rejected by name."""
        partial = type(result)(
            spec=result.spec,
            points=result.points,
            metrics=result.metrics[:-1] + [None],
            computed=result.computed - 1,
            cached=result.cached,
            duration_s=result.duration_s,
            jobs=result.jobs,
        )
        # The missing point is explicit, not silently compacted: the
        # metrics list keeps its slot and the status says why.
        assert len(partial.metrics) == len(partial.points)
        assert not partial.complete
        assert partial.statuses[-1] == "missing"
        assert partial.missing_indices() == [partial.points[-1].index]
        with pytest.raises(CampaignError, match="incomplete") as excinfo:
            build_report(partial)
        assert str(partial.points[-1].index) in str(excinfo.value)

    def test_misaligned_result_rejected(self, result):
        """Dropping a metrics slot is a construction-time error now."""
        with pytest.raises(CampaignError, match="misaligned"):
            type(result)(
                spec=result.spec,
                points=result.points,
                metrics=result.metrics[:-1],
                computed=result.computed,
                cached=result.cached,
                duration_s=result.duration_s,
                jobs=result.jobs,
            )

    def test_payload_is_runtime_free(self, result, report):
        """Same metrics, different wall time: payloads must match."""
        slower = type(result)(
            spec=result.spec,
            points=result.points,
            metrics=result.metrics,
            computed=0,
            cached=len(result.points),
            duration_s=result.duration_s * 100,
            jobs=8,
            cache_stats={"hits": 4, "misses": 0, "writes": 0, "evictions": 0},
        )
        assert canonical_json(build_report(slower)["payload"]) == (
            canonical_json(report["payload"])
        )


class TestValidation:
    def test_rejects_wrong_schema(self, report):
        bad = dict(report, schema="other")
        with pytest.raises(CampaignError, match="schema"):
            validate_report(bad)

    def test_rejects_wrong_version(self, report):
        bad = dict(report, version=99)
        with pytest.raises(CampaignError, match="version"):
            validate_report(bad)

    def test_rejects_point_count_mismatch(self, report):
        payload = dict(report["payload"], n_points=99)
        with pytest.raises(CampaignError, match="99 points"):
            validate_report(dict(report, payload=payload))

    def test_rejects_missing_sections(self):
        with pytest.raises(CampaignError):
            validate_report(
                {
                    "schema": CAMPAIGN_REPORT_SCHEMA,
                    "version": CAMPAIGN_REPORT_VERSION,
                }
            )


class TestWriteAndFormat:
    def test_write_round_trips(self, tmp_path, report):
        path = tmp_path / "report.json"
        write_report(path, report)
        loaded = json.loads(path.read_text())
        validate_report(loaded)
        assert canonical_json(loaded["payload"]) == canonical_json(
            report["payload"]
        )

    def test_write_validates_first(self, tmp_path):
        with pytest.raises(CampaignError):
            write_report(tmp_path / "bad.json", {"schema": "nope"})
        assert not (tmp_path / "bad.json").exists()

    def test_format_mentions_yield_and_percentiles(self, report):
        text = format_report(report)
        assert "total_range_s" in text
        assert "%" in text
        assert "p99" in text.lower() or "p99" in text
