"""Tests for lane-packed campaign evaluation.

The packing contract under test: ``batch_lanes`` is a pure scheduling
knob.  Packed runs must produce metrics bit-for-bit identical to
scalar runs on the python kernel backend (and within the 0.01 ps delay
contract on the vectorised backends), write byte-identical cache
entries, and preserve kill-resume, ``--jobs``, and ``--workers``
semantics unchanged.  Same compute budget discipline as
``test_runner.py``: short records keep every spec test-tier fast.
"""

import pytest

from repro import instrument
from repro.campaign import (
    CampaignSpec,
    ResultCache,
    evaluate_point,
    expand_points,
    run_campaign,
)
from repro.campaign import packing, runner
from repro.campaign.packing import (
    AUTO_LANES,
    plan_packs,
    resolve_batch_lanes,
    validate_batch_lanes,
)
from repro.campaign.runner import evaluate_pack
from repro.campaign.spec import canonical_json
from repro.errors import CampaignError
from repro.kernels import active_backend

TINY = {
    "name": "packing-tiny",
    "scenario": "range",
    "seed": 21,
    "n_instances": 2,
    "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
    "sweeps": [{"name": "bit_rate", "values": ["2.4 Gbps", "4.8 Gbps"]}],
}

DESKEW = {
    "name": "packing-deskew",
    "scenario": "deskew",
    "seed": 7,
    "n_instances": 3,
    "base": {
        "n_channels": 2,
        "n_bits": 48,
        "n_cal_points": 5,
        "measurement": "event",
    },
}


def tiny_spec(**overrides) -> CampaignSpec:
    data = dict(TINY)
    data.update(overrides)
    return CampaignSpec.from_dict(data)


def deskew_spec(**overrides) -> CampaignSpec:
    data = dict(DESKEW)
    data.update(overrides)
    return CampaignSpec.from_dict(data)


#: The ISSUE contract for vectorised backends: delays within 0.01 ps.
DELAY_TOL_S = 1e-14


def _assert_close(a, b, path="metrics"):
    if isinstance(a, dict):
        assert isinstance(b, dict) and set(a) == set(b), path
        for key in a:
            _assert_close(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_close(x, y, f"{path}[{i}]")
    elif isinstance(a, float):
        assert a == pytest.approx(b, rel=1e-9, abs=DELAY_TOL_S), path
    else:
        assert a == b, path


def assert_equivalent(packed, scalar):
    """Packed-vs-scalar metric contract for the active backend."""
    if active_backend() == "python":
        assert canonical_json(packed) == canonical_json(scalar)
    else:
        _assert_close(packed, scalar)


@pytest.fixture(scope="module")
def cold_result():
    """One shared scalar (batch_lanes=1) run of the tiny range spec."""
    return run_campaign(tiny_spec(), jobs=1)


@pytest.fixture(scope="module")
def cold_deskew():
    """One shared scalar run of the tiny deskew spec."""
    return run_campaign(deskew_spec(), jobs=1)


# -- flag validation ---------------------------------------------------------


class TestValidateBatchLanes:
    @pytest.mark.parametrize(
        "value,expected",
        [("auto", "auto"), (" AUTO ", "auto"), (8, 8), ("8", 8), (1, 1)],
    )
    def test_accepts(self, value, expected):
        assert validate_batch_lanes(value) == expected

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "0", "-3", "x", None, ""])
    def test_rejects_and_names_the_flag(self, bad):
        with pytest.raises(CampaignError, match="--batch-lanes"):
            validate_batch_lanes(bad)

    def test_custom_flag_name_in_message(self):
        with pytest.raises(CampaignError, match="batch_lanes"):
            validate_batch_lanes(0, flag="batch_lanes")

    def test_run_campaign_rejects_bad_lanes(self):
        with pytest.raises(CampaignError, match="batch_lanes"):
            run_campaign(tiny_spec(), jobs=1, batch_lanes=0)

    def test_resolve_explicit_int_passes_through(self):
        expected = 4 if packing.fusion_enabled() else 1
        assert resolve_batch_lanes(4) == expected

    def test_resolve_auto_matches_backend_table(self):
        expected = (
            AUTO_LANES.get(active_backend(), 1)
            if packing.fusion_enabled()
            else 1
        )
        assert resolve_batch_lanes("auto") == expected

    def test_resolve_is_scalar_without_fusion(self, monkeypatch):
        monkeypatch.setattr(packing, "fusion_enabled", lambda: False)
        assert resolve_batch_lanes(64) == 1
        assert resolve_batch_lanes("auto") == 1

    def test_unknown_scenario_error_lists_packable(self):
        point = expand_points(tiny_spec())[0]
        bad = type(point)(
            scenario="warp",
            params=point.params,
            instance=0,
            spec_seed=0,
            variation=point.variation,
            index=0,
        )
        with pytest.raises(CampaignError, match="lane-packable") as info:
            evaluate_point(bad)
        assert "deskew" in str(info.value) and "range" in str(info.value)


# -- the pack planner --------------------------------------------------------


class TestPlanPacks:
    @staticmethod
    def plan(items, lanes, weight=1):
        return plan_packs(
            items,
            lanes,
            key_of=lambda item: item[0] if item[0] != "-" else None,
            weight_of=lambda item: weight,
        )

    def test_lanes_one_is_all_singletons(self):
        items = ["a1", "a2", "b1"]
        assert self.plan(items, 1) == [["a1"], ["a2"], ["b1"]]

    def test_groups_by_key_in_first_member_order(self):
        items = ["a1", "b1", "a2", "a3", "b2"]
        assert self.plan(items, 2) == [["a1", "a2"], ["b1", "b2"], ["a3"]]

    def test_unpackable_key_none_stays_singleton(self):
        items = ["a1", "-x", "a2", "-y"]
        assert self.plan(items, 8) == [["a1", "a2"], ["-x"], ["-y"]]

    def test_weight_closes_packs_early(self):
        items = ["a1", "a2", "a3"]
        # Weight-4 members in 8 lanes: two per pack, leftover alone.
        assert self.plan(items, 8, weight=4) == [["a1", "a2"], ["a3"]]

    def test_oversized_member_still_packs_alone(self):
        assert self.plan(["a1", "a2"], 2, weight=5) == [["a1"], ["a2"]]

    def test_campaign_pack_keys_split_on_structural_params(self):
        # bit_rate is structural for the range scenario: the tiny spec
        # (2 instances x 2 bit rates) must plan as 2 packs of 2, with
        # only variation draws and seeds differing within each pack.
        points = expand_points(tiny_spec())
        units = plan_packs(
            points, 64, runner._pack_key, runner._pack_weight
        )
        assert sorted(len(unit) for unit in units) == [2, 2]
        for unit in units:
            keys = {runner._pack_key(point) for point in unit}
            assert len(keys) == 1

    def test_deskew_weight_is_channel_count(self):
        points = expand_points(deskew_spec())
        assert runner._pack_weight(points[0]) == 2
        # 3 points x 2 channels in 4 lanes: 2 + 1.
        units = plan_packs(
            points, 4, runner._pack_key, runner._pack_weight
        )
        assert [len(unit) for unit in units] == [2, 1]


# -- packed-vs-scalar equivalence --------------------------------------------


class TestPackEquivalence:
    @pytest.mark.parametrize("lanes", [3, 64])
    def test_range_matches_scalar(self, lanes, cold_result):
        packed = run_campaign(tiny_spec(), jobs=1, batch_lanes=lanes)
        assert_equivalent(packed.metrics, cold_result.metrics)
        assert packed.statuses == ["computed"] * 4

    def test_deskew_matches_scalar(self, cold_deskew):
        packed = run_campaign(deskew_spec(), jobs=1, batch_lanes=64)
        assert_equivalent(packed.metrics, cold_deskew.metrics)

    def test_jitter_path_matches_scalar(self):
        spec = tiny_spec(
            name="packing-jitter",
            base={"n_bits": 48, "n_points": 5, "measure_jitter": True},
            sweeps=[],
        )
        scalar = run_campaign(spec, jobs=1)
        packed = run_campaign(spec, jobs=1, batch_lanes=64)
        assert_equivalent(packed.metrics, scalar.metrics)
        assert all(
            "added_jitter_s" in metrics for metrics in packed.metrics
        )

    def test_jobs_and_lanes_cross_product(self, cold_result):
        packed = run_campaign(tiny_spec(), jobs=2, batch_lanes=3)
        assert_equivalent(packed.metrics, cold_result.metrics)

    def test_evaluate_pack_matches_evaluate_point(self):
        points = expand_points(tiny_spec(sweeps=[]))
        packed = evaluate_pack(points)
        scalar = [evaluate_point(point) for point in points]
        assert_equivalent(packed, scalar)

    def test_auto_lanes_run_completes(self, cold_result):
        auto = run_campaign(tiny_spec(), jobs=1, batch_lanes="auto")
        assert_equivalent(auto.metrics, cold_result.metrics)


# -- counters ----------------------------------------------------------------


def _counters_for(spec, **kwargs):
    instrument.get_registry().reset()
    instrument.enable()
    try:
        result = run_campaign(spec, **kwargs)
        counters = instrument.get_registry().snapshot()["counters"]
    finally:
        instrument.disable()
    return result, counters


class TestCounters:
    def test_packed_run_counts_packs_and_lanes(self):
        _result, counters = _counters_for(
            tiny_spec(), jobs=1, batch_lanes=64
        )
        assert counters["campaign.packs.evaluated"] == 2
        assert counters["campaign.pack_lanes"] == 4
        assert counters["campaign.points.evaluated"] == 4
        assert "campaign.pack_fallback_scalar" not in counters

    def test_scalar_run_has_no_pack_counters(self):
        _result, counters = _counters_for(
            tiny_spec(), jobs=1, batch_lanes=1
        )
        assert "campaign.packs.evaluated" not in counters
        assert counters["campaign.points.evaluated"] == 4


# -- cache interoperability and kill-resume ----------------------------------


class TestCacheInterop:
    def test_packed_entries_are_byte_identical_to_scalar(self, tmp_path):
        if active_backend() != "python":
            pytest.skip("byte-identity contract is python-backend only")
        scalar_cache = ResultCache(tmp_path / "scalar")
        packed_cache = ResultCache(tmp_path / "packed")
        run_campaign(tiny_spec(), jobs=1, cache=scalar_cache)
        run_campaign(
            tiny_spec(), jobs=1, cache=packed_cache, batch_lanes=64
        )
        for point in expand_points(tiny_spec()):
            assert canonical_json(
                packed_cache.get(point)
            ) == canonical_json(scalar_cache.get(point))

    def test_scalar_run_hits_pack_filled_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        packed = run_campaign(
            tiny_spec(), jobs=1, cache=cache, batch_lanes=64
        )
        warm = run_campaign(tiny_spec(), jobs=1, cache=cache)
        assert packed.computed == 4
        assert warm.cached == 4 and warm.computed == 0
        assert canonical_json(warm.metrics) == canonical_json(
            packed.metrics
        )

    def test_kill_resume_mid_pack(self, tmp_path, cold_result):
        """Pre-seed one lane of a would-be pack; the resumed packed run
        recomputes only the missing points, still packs the compatible
        remainder, and matches the scalar cold run."""
        spec = tiny_spec()
        cache = ResultCache(tmp_path / "cache")
        points = expand_points(spec)
        cache.put(points[0], evaluate_point(points[0]))

        instrument.get_registry().reset()
        instrument.enable()
        try:
            resumed = run_campaign(
                spec, jobs=1, cache=cache, batch_lanes=64
            )
            counters = instrument.get_registry().snapshot()["counters"]
        finally:
            instrument.disable()
        assert counters["campaign.points.total"] == 4
        assert counters["campaign.points.cached"] == 1
        assert counters["campaign.points.evaluated"] == 3
        # 2 keys over the 3 pending points: one pack of 2 plus a
        # singleton, so packing survives a partial cache.
        assert counters["campaign.packs.evaluated"] == 1
        assert counters["campaign.pack_lanes"] == 2
        assert resumed.statuses.count("cached") == 1
        assert resumed.statuses.count("computed") == 3
        assert_equivalent(resumed.metrics, cold_result.metrics)


# -- scalar fallback and failure attribution ---------------------------------


def _exploding_pack(points):
    raise RuntimeError("pack kernel exploded")


class TestFallback:
    def test_pack_failure_falls_back_to_scalar(
        self, monkeypatch, cold_result
    ):
        monkeypatch.setitem(
            runner._PACK_EVALUATORS, "range", _exploding_pack
        )
        instrument.get_registry().reset()
        instrument.enable()
        try:
            result = run_campaign(tiny_spec(), jobs=1, batch_lanes=64)
            counters = instrument.get_registry().snapshot()["counters"]
        finally:
            instrument.disable()
        assert canonical_json(result.metrics) == canonical_json(
            cold_result.metrics
        )
        assert counters["campaign.pack_fallback_scalar"] == 4
        assert "campaign.packs.evaluated" not in counters

    def test_unpackable_scenario_falls_back(self, monkeypatch):
        monkeypatch.delitem(runner._PACK_EVALUATORS, "range")
        monkeypatch.delitem(runner._PACK_DEFAULTS, "range")
        result = run_campaign(tiny_spec(), jobs=1, batch_lanes=64)
        assert result.statuses == ["computed"] * 4

    def test_fallback_failure_names_the_failing_lane(self, monkeypatch):
        monkeypatch.setitem(
            runner._PACK_EVALUATORS, "range", _exploding_pack
        )
        real = evaluate_point

        def boom(point):
            if point.index == 2:
                raise RuntimeError("lane 2 evaluator exploded")
            return real(point)

        monkeypatch.setattr(runner, "evaluate_point", boom)
        with pytest.raises(
            CampaignError, match=r"point 2 \(scenario='range'"
        ) as info:
            run_campaign(tiny_spec(), jobs=1, batch_lanes=64)
        assert "lane 2 evaluator exploded" in str(info.value)

    def test_pack_point_failure_survives_pickling(self):
        import pickle

        exc = runner.PackPointFailure("lane broke", 7)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.index == 7
        assert str(clone) == "lane broke"


# -- distributed workers -----------------------------------------------------


class TestWorkers:
    def test_spawn_workers_with_lanes_match_scalar(self, cold_result):
        packed = run_campaign(
            tiny_spec(), workers="spawn://2", batch_lanes=4
        )
        assert_equivalent(packed.metrics, cold_result.metrics)
        assert packed.statuses == ["computed"] * 4
