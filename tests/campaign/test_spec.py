"""Tests for the declarative campaign spec layer."""

import json

import pytest

from repro.campaign import CampaignSpec, SweepAxis, expand_points
from repro.campaign.spec import canonical_json
from repro.campaign.variation import VariationModel
from repro.errors import CampaignError


def small_spec(**overrides) -> CampaignSpec:
    data = {
        "name": "unit",
        "scenario": "range",
        "seed": 9,
        "n_instances": 2,
        "base": {"n_bits": 48},
        "sweeps": [{"name": "bit_rate", "values": ["2.4 Gbps", "4.8 Gbps"]}],
    }
    data.update(overrides)
    return CampaignSpec.from_dict(data)


class TestResolution:
    def test_quantity_strings_resolve_to_si(self):
        spec = small_spec(base={"skew_spread": "200 ps", "n_bits": 48})
        assert spec.base["skew_spread"] == pytest.approx(200e-12)

    def test_plain_words_stay_strings(self):
        spec = small_spec(base={"measurement": "event"})
        assert spec.base["measurement"] == "event"

    def test_numbers_and_bools_pass_through(self):
        spec = small_spec(base={"n_bits": 48, "measure_jitter": False})
        assert spec.base["n_bits"] == 48
        assert spec.base["measure_jitter"] is False


class TestSweepAxis:
    def test_values_list_resolves_quantities(self):
        axis = SweepAxis.from_dict(
            {"name": "bit_rate", "values": ["1.6 Gbps", "6.4 Gbps"]}
        )
        assert axis.values == pytest.approx((1.6e9, 6.4e9))

    def test_linspace_includes_endpoints(self):
        axis = SweepAxis.from_dict(
            {"name": "temperature_c", "linspace": {"start": 0, "stop": 70, "num": 3}}
        )
        assert axis.values == pytest.approx((0.0, 35.0, 70.0))

    def test_linspace_with_quantity_endpoints(self):
        axis = SweepAxis.from_dict(
            {
                "name": "skew_spread",
                "linspace": {"start": "100 ps", "stop": "300 ps", "num": 2},
            }
        )
        assert axis.values == pytest.approx((100e-12, 300e-12))

    @pytest.mark.parametrize(
        "bad",
        [
            {"name": "x"},
            {"name": "x", "values": [1], "linspace": {"start": 0, "stop": 1, "num": 2}},
            {"name": "x", "values": []},
            {"name": "x", "linspace": {"start": 0, "stop": 1}},
            {"name": "x", "linspace": {"start": 0, "stop": 1, "num": 1}},
            {"name": "x", "linspace": {"start": "event", "stop": 1, "num": 2}},
        ],
    )
    def test_rejects_malformed_axes(self, bad):
        with pytest.raises(CampaignError):
            SweepAxis.from_dict(bad)


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = small_spec()
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert CampaignSpec.load(path) == spec
        # The saved file is plain JSON, readable by anything.
        assert json.loads(path.read_text())["name"] == "unit"

    def test_variation_round_trips(self):
        spec = small_spec(variation={"slew_rate_sigma": 0.2})
        assert spec.variation.slew_rate_sigma == pytest.approx(0.2)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec


class TestValidation:
    def test_rejects_unknown_spec_keys(self):
        with pytest.raises(CampaignError, match="unknown campaign spec keys"):
            CampaignSpec.from_dict({"name": "x", "scenario": "range", "bogus": 1})

    def test_rejects_unknown_scenario(self):
        with pytest.raises(CampaignError, match="unknown scenario"):
            small_spec(scenario="warp")

    def test_rejects_duplicate_axes(self):
        with pytest.raises(CampaignError, match="duplicate sweep axis"):
            small_spec(
                sweeps=[
                    {"name": "bit_rate", "values": [1]},
                    {"name": "bit_rate", "values": [2]},
                ]
            )

    def test_rejects_bad_instances(self):
        with pytest.raises(CampaignError, match="n_instances"):
            small_spec(n_instances=0)

    def test_rejects_invalid_json(self):
        with pytest.raises(CampaignError, match="not valid JSON"):
            CampaignSpec.from_json("{nope")

    def test_rejects_unknown_variation_keys(self):
        with pytest.raises(CampaignError, match="unknown variation model"):
            small_spec(variation={"sigma_of_everything": 1.0})


class TestExpansion:
    def test_point_count(self):
        spec = small_spec()
        points = expand_points(spec)
        assert len(points) == spec.n_points() == 4

    def test_grid_major_instance_minor_order(self):
        points = expand_points(small_spec())
        rates = [p.params["bit_rate"] for p in points]
        instances = [p.instance for p in points]
        assert rates == pytest.approx([2.4e9, 2.4e9, 4.8e9, 4.8e9])
        assert instances == [0, 1, 0, 1]
        assert [p.index for p in points] == [0, 1, 2, 3]

    def test_limit_truncates(self):
        assert len(expand_points(small_spec(), limit=3)) == 3

    def test_axis_overrides_base(self):
        spec = small_spec(base={"bit_rate": "1 Gbps", "n_bits": 48})
        points = expand_points(spec)
        assert all(p.params["bit_rate"] != 1e9 for p in points)


class TestIdentity:
    def test_identity_excludes_name_and_position(self):
        a = expand_points(small_spec())
        b = expand_points(small_spec(name="renamed"))
        assert [p.digest() for p in a] == [p.digest() for p in b]

    def test_extending_a_sweep_keeps_existing_digests(self):
        base = expand_points(small_spec())
        extended = expand_points(
            small_spec(
                sweeps=[
                    {
                        "name": "bit_rate",
                        "values": ["2.4 Gbps", "4.8 Gbps", "6.4 Gbps"],
                    }
                ]
            )
        )
        assert {p.digest() for p in base} < {p.digest() for p in extended}

    def test_seed_changes_with_instance_and_spec_seed(self):
        points = expand_points(small_spec())
        assert points[0].seed() != points[1].seed()
        reseeded = expand_points(small_spec(seed=10))
        assert points[0].seed() != reseeded[0].seed()

    def test_seed_is_deterministic(self):
        a = expand_points(small_spec())[0]
        b = expand_points(small_spec())[0]
        assert a.seed() == b.seed()
        assert a.digest() == b.digest()


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_rejects_nan(self):
        with pytest.raises(CampaignError):
            canonical_json({"x": float("nan")})

    def test_rejects_unserialisable(self):
        with pytest.raises(CampaignError):
            canonical_json({"x": VariationModel()})
