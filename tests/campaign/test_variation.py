"""Tests for the process-variation model."""

import pytest

from repro.campaign.variation import (
    NOMINAL_TEMPERATURE_C,
    InstanceVariation,
    VariationModel,
)
from repro.core.params import (
    COARSE_TAP_ERRORS,
    FOUR_STAGE_BUFFER,
    SOURCE_RISE_TIME,
)
from repro.errors import CampaignError


class TestDraw:
    def test_same_seed_same_instance(self):
        model = VariationModel()
        assert model.draw(42) == model.draw(42)

    def test_different_seeds_differ(self):
        model = VariationModel()
        assert model.draw(1) != model.draw(2)

    def test_zero_sigma_freezes_at_nominal(self):
        model = VariationModel(
            slew_rate_sigma=0.0,
            amplitude_sigma=0.0,
            tap_error_sigma=0.0,
            rise_time_sigma=0.0,
            noise_sigma_sigma=0.0,
        )
        var = model.draw(7)
        assert var.slew_rate_scale == 1.0
        assert var.amplitude_scale == 1.0
        assert var.rise_time_scale == 1.0
        assert var.noise_sigma_scale == 1.0
        assert var.tap_error_offsets == (0.0,) * 4

    def test_scales_are_truncated(self):
        model = VariationModel(slew_rate_sigma=10.0)
        scales = [model.draw(seed).slew_rate_scale for seed in range(50)]
        assert all(0.5 <= s <= 1.5 for s in scales)

    def test_spread_tracks_sigma(self):
        tight = VariationModel(slew_rate_sigma=0.01)
        loose = VariationModel(slew_rate_sigma=0.10)
        tight_scales = [tight.draw(s).slew_rate_scale for s in range(100)]
        loose_scales = [loose.draw(s).slew_rate_scale for s in range(100)]
        assert max(tight_scales) - min(tight_scales) < max(
            loose_scales
        ) - min(loose_scales)


class TestApplication:
    def test_nominal_instance_is_identity(self):
        var = InstanceVariation()
        assert var.buffer_params(FOUR_STAGE_BUFFER) == FOUR_STAGE_BUFFER
        assert var.tap_errors() == COARSE_TAP_ERRORS
        assert var.rise_time() == SOURCE_RISE_TIME

    def test_buffer_scales_apply(self):
        var = InstanceVariation(
            slew_rate_scale=1.1, amplitude_scale=0.9, noise_sigma_scale=2.0
        )
        perturbed = var.buffer_params(FOUR_STAGE_BUFFER)
        assert perturbed.slew_rate == pytest.approx(
            FOUR_STAGE_BUFFER.slew_rate * 1.1
        )
        assert perturbed.amplitude_min == pytest.approx(
            FOUR_STAGE_BUFFER.amplitude_min * 0.9
        )
        assert perturbed.amplitude_max == pytest.approx(
            FOUR_STAGE_BUFFER.amplitude_max * 0.9
        )
        assert perturbed.noise_sigma == pytest.approx(
            FOUR_STAGE_BUFFER.noise_sigma * 2.0
        )

    def test_temperature_drift_signs(self):
        hot = InstanceVariation(temperature_c=NOMINAL_TEMPERATURE_C + 50)
        params = hot.buffer_params(FOUR_STAGE_BUFFER)
        # Positive delay drift, negative slew drift (defaults).
        assert params.propagation_delay > FOUR_STAGE_BUFFER.propagation_delay
        assert params.slew_rate < FOUR_STAGE_BUFFER.slew_rate

    def test_nominal_temperature_means_no_drift(self):
        var = InstanceVariation(temperature_c=NOMINAL_TEMPERATURE_C)
        assert var.buffer_params(FOUR_STAGE_BUFFER) == FOUR_STAGE_BUFFER

    def test_tap_errors_are_relative_to_tap0(self):
        var = InstanceVariation(
            tap_error_offsets=(1e-12, 2e-12, 3e-12, 4e-12)
        )
        errors = var.tap_errors(COARSE_TAP_ERRORS)
        # Tap 0 keeps its base value exactly; others shift relatively.
        assert errors[0] == COARSE_TAP_ERRORS[0]
        assert errors[1] == pytest.approx(COARSE_TAP_ERRORS[1] + 1e-12)

    def test_tap_count_mismatch_raises(self):
        var = InstanceVariation(tap_error_offsets=(1e-12, 2e-12))
        with pytest.raises(CampaignError, match="tap offsets"):
            var.tap_errors(COARSE_TAP_ERRORS)

    def test_rise_time_scales(self):
        var = InstanceVariation(rise_time_scale=1.2)
        assert var.rise_time(30e-12) == pytest.approx(36e-12)


class TestModelValidation:
    def test_rejects_negative_sigma(self):
        with pytest.raises(CampaignError):
            VariationModel(slew_rate_sigma=-0.1)

    def test_round_trip(self):
        model = VariationModel(tap_error_sigma=3e-12, n_taps=6)
        assert VariationModel.from_dict(model.to_dict()) == model

    def test_rejects_unknown_keys(self):
        with pytest.raises(CampaignError, match="unknown variation"):
            VariationModel.from_dict({"voltage_sigma": 0.1})

    def test_summary_is_json_friendly(self):
        summary = VariationModel().draw(3).summary()
        assert set(summary) == {
            "slew_rate_scale",
            "amplitude_scale",
            "rise_time_scale",
            "noise_sigma_scale",
            "temperature_c",
        }
        assert all(isinstance(v, float) for v in summary.values())
