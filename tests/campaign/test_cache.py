"""Tests for the content-addressed result cache."""

import json
import os

import pytest

from repro import instrument
from repro.campaign import CampaignSpec, ResultCache, expand_points
from repro.campaign.cache import CACHE_SALT
from repro.errors import CampaignError


@pytest.fixture
def point():
    spec = CampaignSpec.from_dict(
        {"name": "c", "scenario": "range", "base": {"n_bits": 48}}
    )
    return expand_points(spec)[0]


class TestRoundTrip:
    def test_put_then_get(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        key = cache.put(point, {"total_range_s": 1.4e-10})
        assert cache.get(point) == {"total_range_s": 1.4e-10}
        assert len(key) == 64
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        assert cache.get(point) is None

    def test_key_is_stable_across_instances(self, tmp_path, point):
        assert ResultCache(tmp_path).key(point) == ResultCache(
            tmp_path
        ).key(point)

    def test_entry_is_self_describing(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        key = cache.put(point, {"x": 1})
        entry = json.loads((tmp_path / f"{key}.json").read_text())
        assert entry["identity"] == point.identity()
        assert entry["salt"] == CACHE_SALT

    def test_rejects_non_dict_metrics(self, tmp_path, point):
        with pytest.raises(CampaignError):
            ResultCache(tmp_path).put(point, [1, 2])


class TestEviction:
    def test_corrupt_entry_is_evicted_and_recomputable(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        key = cache.put(point, {"x": 1})
        (tmp_path / f"{key}.json").write_text("{truncated")
        assert cache.get(point) is None
        assert not (tmp_path / f"{key}.json").exists()
        assert cache.stats()["evictions"] == 1

    def test_salt_bump_invalidates(self, tmp_path, point):
        old = ResultCache(tmp_path, salt="repro.campaign/0")
        old.put(point, {"x": 1})
        new = ResultCache(tmp_path, salt="repro.campaign/1")
        # Different salt, different address: a clean miss.
        assert new.get(point) is None
        assert new.key(point) != old.key(point)

    def test_prune_removes_stale_salt_entries(self, tmp_path, point):
        old = ResultCache(tmp_path, salt="repro.campaign/0")
        old.put(point, {"x": 1})
        new = ResultCache(tmp_path, salt="repro.campaign/1")
        new.put(point, {"x": 2})
        assert len(new) == 2
        assert new.prune() == 1
        assert len(new) == 1
        assert new.get(point) == {"x": 2}


class TestStats:
    def test_tallies(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        cache.get(point)
        cache.put(point, {"x": 1})
        cache.get(point)
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "writes": 1,
            "evictions": 0,
        }

    def test_instrument_counters(self, tmp_path, point):
        instrument.get_registry().reset()
        instrument.enable()
        try:
            cache = ResultCache(tmp_path)
            cache.get(point)
            cache.put(point, {"x": 1})
            cache.get(point)
            counters = instrument.get_registry().snapshot()["counters"]
        finally:
            instrument.disable()
        assert counters["campaign.cache.misses"] == 1
        assert counters["campaign.cache.writes"] == 1
        assert counters["campaign.cache.hits"] == 1

    def test_no_temp_files_left_behind(self, tmp_path, point):
        cache = ResultCache(tmp_path)
        cache.put(point, {"x": 1})
        leftovers = [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]
        assert leftovers == []
