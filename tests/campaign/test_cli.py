"""Tests for the ``python -m repro.campaign`` command line."""

import json

import pytest

from repro import instrument
from repro.campaign.__main__ import main
from repro.instrument import validate_manifest

TINY = {
    "name": "cli-tiny",
    "scenario": "range",
    "seed": 41,
    "n_instances": 1,
    "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
    "sweeps": [{"name": "bit_rate", "values": ["2.4 Gbps", "4.8 Gbps"]}],
}


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(TINY))
    return path


class TestRun:
    def test_run_prints_yield_tables(self, spec_path, capsys):
        exit_code = main(["run", str(spec_path), "--quiet"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cli-tiny" in captured.out
        assert "total_range_s" in captured.out

    def test_run_writes_report_and_uses_cache(
        self, spec_path, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        report1 = tmp_path / "r1.json"
        report2 = tmp_path / "r2.json"
        common = ["run", str(spec_path), "--quiet", "--cache-dir", str(cache_dir)]
        assert main(common + ["--report", str(report1)]) == 0
        assert main(common + ["--report", str(report2)]) == 0
        capsys.readouterr()
        first = json.loads(report1.read_text())
        second = json.loads(report2.read_text())
        assert first["payload"] == second["payload"]
        assert second["runtime"]["cached"] == 2
        assert second["runtime"]["cache_stats"]["hits"] == 2

    def test_metrics_json_writes_valid_manifest(
        self, spec_path, tmp_path, capsys
    ):
        path = tmp_path / "metrics.json"
        exit_code = main(
            ["run", str(spec_path), "--quiet", "--metrics-json", str(path)]
        )
        capsys.readouterr()
        assert exit_code == 0
        data = json.loads(path.read_text())
        validate_manifest(data)
        assert data["experiments"][0]["id"] == "campaign.cli-tiny"
        assert data["counters"]["campaign.points.total"] == 2
        assert "campaign.run" in data["spans"]
        # The CLI restores the disabled default.
        assert not instrument.enabled()

    def test_missing_spec_is_a_clean_error(self, tmp_path, capsys):
        exit_code = main(["run", str(tmp_path / "nope.json"), "--quiet"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_invalid_spec_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "scenario": "warp"}))
        exit_code = main(["run", str(path), "--quiet"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown scenario" in captured.err

    @pytest.mark.parametrize("jobs", ["0", "-3"])
    def test_rejects_bad_jobs(self, spec_path, capsys, jobs):
        exit_code = main(["run", str(spec_path), "--jobs", jobs])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert f"error: --jobs must be >= 1, got {jobs}" in captured.err

    def test_rejects_bad_workers_spec(self, spec_path, capsys):
        exit_code = main(
            ["run", str(spec_path), "--quiet", "--workers", "carrier://2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "carrier://2" in captured.err


class TestExpand:
    def test_expand_previews_points(self, spec_path, capsys):
        exit_code = main(["expand", str(spec_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "2 points" in captured.out
        assert "digest=" in captured.out

    def test_expand_limit(self, spec_path, capsys):
        exit_code = main(["expand", str(spec_path), "--limit", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "showing 1" in captured.out


class TestReport:
    def test_rerenders_written_report(self, spec_path, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert (
            main(
                ["run", str(spec_path), "--quiet", "--report", str(report_path)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["report", str(report_path)]) == 0
        captured = capsys.readouterr()
        assert "cli-tiny" in captured.out

    def test_rejects_non_report_json(self, tmp_path, capsys):
        path = tmp_path / "not-report.json"
        path.write_text("{}")
        exit_code = main(["report", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err
