"""Tests for the campaign execution engine.

Compute budgets matter here: every spec uses short records (48-bit
PRBS, 5 calibration points) so a point costs ~0.25 s and the whole
module stays test-tier fast.
"""

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro import instrument, parallel
from repro.campaign import (
    CampaignSpec,
    ResultCache,
    evaluate_point,
    expand_points,
    run_campaign,
)
from repro.campaign import runner
from repro.campaign.spec import canonical_json
from repro.errors import CampaignCancelled, CampaignError

TINY = {
    "name": "runner-tiny",
    "scenario": "range",
    "seed": 21,
    "n_instances": 2,
    "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
    "sweeps": [{"name": "bit_rate", "values": ["2.4 Gbps", "4.8 Gbps"]}],
}


def tiny_spec(**overrides) -> CampaignSpec:
    data = dict(TINY)
    data.update(overrides)
    return CampaignSpec.from_dict(data)


@pytest.fixture(scope="module")
def cold_result():
    """One shared cold run of the tiny spec (deterministic)."""
    return run_campaign(tiny_spec(), jobs=1)


class TestEvaluatePoint:
    def test_range_metrics(self, cold_result):
        metrics = cold_result.metrics[0]
        assert metrics["total_range_s"] > 100e-12
        assert metrics["fine_range_s"] > 0
        assert "variation" in metrics

    def test_deterministic(self):
        point = expand_points(tiny_spec())[0]
        assert canonical_json(evaluate_point(point)) == canonical_json(
            evaluate_point(point)
        )

    def test_unknown_scenario_rejected(self):
        point = expand_points(tiny_spec())[0]
        bad = type(point)(
            scenario="warp",
            params=point.params,
            instance=0,
            spec_seed=0,
            variation=point.variation,
            index=0,
        )
        with pytest.raises(CampaignError, match="unknown scenario"):
            evaluate_point(bad)

    def test_unknown_parameter_rejected(self):
        spec = tiny_spec(base={"n_bits": 48, "warp_factor": 9}, sweeps=[])
        with pytest.raises(CampaignError, match="warp_factor"):
            evaluate_point(expand_points(spec)[0])

    def test_deskew_metrics(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "dsk",
                "scenario": "deskew",
                "seed": 5,
                "base": {
                    "n_channels": 2,
                    "n_bits": 48,
                    "n_cal_points": 5,
                    "measurement": "event",
                },
            }
        )
        metrics = evaluate_point(expand_points(spec)[0])
        assert metrics["final_spread_s"] < metrics["initial_spread_s"]
        assert metrics["converged"] is True
        assert metrics["total_range_s"] > 100e-12
        assert len(metrics["variation"]) == 2

    def test_deskew_rejects_bad_measurement(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "dsk",
                "scenario": "deskew",
                "base": {"measurement": "oscilloscope"},
            }
        )
        with pytest.raises(CampaignError, match="measurement"):
            evaluate_point(expand_points(spec)[0])


class TestRunCampaign:
    def test_jobs_do_not_change_results(self, cold_result):
        parallel = run_campaign(tiny_spec(), jobs=2)
        assert canonical_json(parallel.metrics) == canonical_json(
            cold_result.metrics
        )

    def test_metrics_align_with_points(self, cold_result):
        assert len(cold_result.metrics) == len(cold_result.points) == 4
        assert cold_result.computed == 4
        assert cold_result.cached == 0

    def test_rejects_bad_jobs(self):
        with pytest.raises(CampaignError):
            run_campaign(tiny_spec(), jobs=0)

    def test_progress_callback_sees_every_point(self):
        seen = []
        run_campaign(
            tiny_spec(n_instances=1),
            jobs=1,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (2, 2)


class TestCaching:
    def test_warm_rerun_is_all_hits(self, tmp_path, cold_result):
        cache_dir = tmp_path / "cache"
        first = run_campaign(tiny_spec(), jobs=1, cache_dir=cache_dir)
        second = run_campaign(tiny_spec(), jobs=1, cache_dir=cache_dir)
        assert first.computed == 4 and first.cached == 0
        assert second.computed == 0 and second.cached == 4
        assert second.cache_stats["hits"] == 4
        assert second.cache_stats["misses"] == 0
        assert canonical_json(second.metrics) == canonical_json(
            cold_result.metrics
        )

    def test_killed_campaign_resumes_missing_points_only(self, tmp_path):
        """Half-run the campaign, then restart: the acceptance test."""
        spec = tiny_spec()
        cache = ResultCache(tmp_path / "cache")
        points = expand_points(spec)
        # Simulate a campaign killed halfway: two of four points landed.
        for point in points[:2]:
            cache.put(point, evaluate_point(point))

        instrument.get_registry().reset()
        instrument.enable()
        try:
            resumed = run_campaign(spec, jobs=1, cache=cache)
            counters = instrument.get_registry().snapshot()["counters"]
        finally:
            instrument.disable()
        assert counters["campaign.points.total"] == 4
        assert counters["campaign.points.cached"] == 2
        assert counters["campaign.points.evaluated"] == 2
        assert counters["campaign.cache.hits"] == 2
        assert counters["campaign.cache.misses"] == 2
        # And the resumed result matches a single cold run bit for bit.
        cold = run_campaign(spec, jobs=1)
        assert canonical_json(resumed.metrics) == canonical_json(
            cold.metrics
        )

    def test_extending_a_sweep_recomputes_only_new_points(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_campaign(tiny_spec(), jobs=1, cache_dir=cache_dir)
        extended = tiny_spec(
            sweeps=[
                {
                    "name": "bit_rate",
                    "values": ["2.4 Gbps", "4.8 Gbps", "3.2 Gbps"],
                }
            ]
        )
        result = run_campaign(extended, jobs=1, cache_dir=cache_dir)
        assert result.cached == 4
        assert result.computed == 2

    def test_parallel_run_fills_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_campaign(tiny_spec(), jobs=2, cache_dir=cache_dir)
        second = run_campaign(tiny_spec(), jobs=2, cache_dir=cache_dir)
        assert first.computed == 4
        assert second.computed == 0


# -- failure draining --------------------------------------------------------

# Pool stand-ins for the drain tests.  They live at module level so the
# fork-started workers can unpickle them by qualified name; the parent
# swaps them in for ``runner._evaluate_for_pool`` via monkeypatch and
# fork inheritance does the rest.  Point 0 fails after the other
# workers are mid-flight (sleeps stagger the schedule deterministically).


def _drain_worker(point, collect):
    if point.index == 0:
        time.sleep(0.25)
        raise RuntimeError("injected point failure")
    time.sleep(0.5)
    return parallel.encode_payload(
        ({"delay_ps": float(point.index)}, 0.01, None)
    )


def _shm_drain_worker(point, collect):
    if point.index == 0:
        time.sleep(0.25)
        raise RuntimeError("injected point failure")
    time.sleep(0.5)
    metrics = {
        "delay_ps": float(point.index),
        # 64 KiB, well past MIN_SHM_BYTES: forces the payload through
        # a shared-memory block the parent must decode or leak.
        "trace": np.zeros(8192, dtype=np.float64),
    }
    return parallel.encode_payload((metrics, 0.01, None))


fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="drain stand-ins rely on fork inheritance",
)


@fork_only
class TestFailureDrain:
    def test_failure_names_point_and_caches_survivors(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(runner, "_evaluate_for_pool", _drain_worker)
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        with pytest.raises(
            CampaignError, match=r"point 0 \(scenario='range'"
        ) as exc_info:
            run_campaign(spec, jobs=2, cache=cache)
        assert "injected point failure" in str(exc_info.value)

        points = expand_points(spec)
        assert cache.get(points[0]) is None
        # Point 1 was mid-flight when point 0 failed: the drain decoded
        # and cached it instead of abandoning it with the pool.
        assert cache.get(points[1]) == {"delay_ps": 1.0}
        survivors = [
            point.index
            for point in points[1:]
            if cache.get(point) is not None
        ]
        assert survivors, "no completed point survived into the cache"

    def test_failure_releases_inflight_shm(self, tmp_path, monkeypatch):
        if not parallel.SHM_AVAILABLE or not os.path.isdir("/dev/shm"):
            pytest.skip("POSIX shared memory not observable here")
        monkeypatch.setattr(runner, "_evaluate_for_pool", _shm_drain_worker)
        before = set(os.listdir("/dev/shm"))
        with pytest.raises(CampaignError, match="point 0"):
            run_campaign(tiny_spec(), jobs=2)
        # Completed-but-undecoded payloads would leave psm_* blocks
        # behind (the pre-drain leak); the drain claims every one.
        leaked = {
            name
            for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        }
        assert not leaked, f"leaked shm blocks: {sorted(leaked)}"


class TestSequentialFailure:
    def test_failure_names_point_and_keeps_survivors(
        self, tmp_path, monkeypatch
    ):
        def boom(point):
            if point.index == 1:
                raise RuntimeError("evaluator exploded")
            return {"delay_ps": float(point.index)}

        monkeypatch.setattr(runner, "evaluate_point", boom)
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(
            CampaignError, match=r"point 1 \(scenario='range'"
        ) as exc_info:
            run_campaign(tiny_spec(), jobs=1, cache=cache)
        assert "evaluator exploded" in str(exc_info.value)
        points = expand_points(tiny_spec())
        assert cache.get(points[0]) == {"delay_ps": 0.0}
        assert cache.get(points[1]) is None


# -- cancellation ------------------------------------------------------------


class TestCancellation:
    def test_cancel_before_start(self):
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(CampaignCancelled) as exc_info:
            run_campaign(tiny_spec(), jobs=1, cancel=cancel)
        exc = exc_info.value
        assert exc.done == 0
        assert exc.total == 4
        assert exc.partial is not None
        assert exc.partial.statuses == ["missing"] * 4
        assert not exc.partial.complete
        assert exc.partial.missing_indices() == [0, 1, 2, 3]

    def test_cancel_mid_sequential_run_then_resume_from_cache(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        cancel = threading.Event()

        def progress(done, total):
            if done >= 2:
                cancel.set()

        with pytest.raises(CampaignCancelled) as exc_info:
            run_campaign(
                tiny_spec(),
                jobs=1,
                cache=cache,
                cancel=cancel,
                progress=progress,
            )
        exc = exc_info.value
        assert 2 <= exc.done < 4
        partial = exc.partial
        assert partial.statuses.count("computed") == exc.done
        assert len(partial.missing_indices()) == 4 - exc.done
        # The partial keeps metrics aligned: missing points are None.
        for index in partial.missing_indices():
            assert partial.metrics[index] is None

        # Every completed point went to the cache, so a resubmission
        # recomputes only the missing tail — the kill-resume loop.
        resumed = run_campaign(tiny_spec(), jobs=1, cache=cache)
        assert resumed.complete
        assert resumed.cached == exc.done
        assert resumed.computed == 4 - exc.done

    def test_cancel_mid_parallel_run_drains_to_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cancel = threading.Event()

        def progress(done, total):
            if done >= 1:
                cancel.set()

        with pytest.raises(CampaignCancelled) as exc_info:
            run_campaign(
                tiny_spec(),
                jobs=2,
                cache=cache,
                cancel=cancel,
                progress=progress,
            )
        exc = exc_info.value
        # In-flight points are drained to completion, so anywhere from
        # 1 (the trigger) to all 4 may have landed — but the run still
        # reports cancelled, and every drained point is in the cache.
        assert 1 <= exc.done <= 4
        assert exc.partial.statuses.count("computed") == exc.done

        resumed = run_campaign(tiny_spec(), jobs=2, cache=cache)
        assert resumed.complete
        assert resumed.cached == exc.done
        assert resumed.computed == 4 - exc.done


# -- per-point statuses ------------------------------------------------------


class TestPointStatuses:
    def test_full_run_is_all_computed(self, cold_result):
        assert cold_result.statuses == ["computed"] * 4
        assert cold_result.complete
        assert cold_result.missing_indices() == []

    def test_warm_run_is_all_cached(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_campaign(tiny_spec(), jobs=1, cache_dir=cache_dir)
        warm = run_campaign(tiny_spec(), jobs=1, cache_dir=cache_dir)
        assert warm.statuses == ["cached"] * 4
        assert warm.complete
