"""Tests for the campaign execution engine.

Compute budgets matter here: every spec uses short records (48-bit
PRBS, 5 calibration points) so a point costs ~0.25 s and the whole
module stays test-tier fast.
"""

import pytest

from repro import instrument
from repro.campaign import (
    CampaignSpec,
    ResultCache,
    evaluate_point,
    expand_points,
    run_campaign,
)
from repro.campaign.spec import canonical_json
from repro.errors import CampaignError

TINY = {
    "name": "runner-tiny",
    "scenario": "range",
    "seed": 21,
    "n_instances": 2,
    "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
    "sweeps": [{"name": "bit_rate", "values": ["2.4 Gbps", "4.8 Gbps"]}],
}


def tiny_spec(**overrides) -> CampaignSpec:
    data = dict(TINY)
    data.update(overrides)
    return CampaignSpec.from_dict(data)


@pytest.fixture(scope="module")
def cold_result():
    """One shared cold run of the tiny spec (deterministic)."""
    return run_campaign(tiny_spec(), jobs=1)


class TestEvaluatePoint:
    def test_range_metrics(self, cold_result):
        metrics = cold_result.metrics[0]
        assert metrics["total_range_s"] > 100e-12
        assert metrics["fine_range_s"] > 0
        assert "variation" in metrics

    def test_deterministic(self):
        point = expand_points(tiny_spec())[0]
        assert canonical_json(evaluate_point(point)) == canonical_json(
            evaluate_point(point)
        )

    def test_unknown_scenario_rejected(self):
        point = expand_points(tiny_spec())[0]
        bad = type(point)(
            scenario="warp",
            params=point.params,
            instance=0,
            spec_seed=0,
            variation=point.variation,
            index=0,
        )
        with pytest.raises(CampaignError, match="unknown scenario"):
            evaluate_point(bad)

    def test_unknown_parameter_rejected(self):
        spec = tiny_spec(base={"n_bits": 48, "warp_factor": 9}, sweeps=[])
        with pytest.raises(CampaignError, match="warp_factor"):
            evaluate_point(expand_points(spec)[0])

    def test_deskew_metrics(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "dsk",
                "scenario": "deskew",
                "seed": 5,
                "base": {
                    "n_channels": 2,
                    "n_bits": 48,
                    "n_cal_points": 5,
                    "measurement": "event",
                },
            }
        )
        metrics = evaluate_point(expand_points(spec)[0])
        assert metrics["final_spread_s"] < metrics["initial_spread_s"]
        assert metrics["converged"] is True
        assert metrics["total_range_s"] > 100e-12
        assert len(metrics["variation"]) == 2

    def test_deskew_rejects_bad_measurement(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "dsk",
                "scenario": "deskew",
                "base": {"measurement": "oscilloscope"},
            }
        )
        with pytest.raises(CampaignError, match="measurement"):
            evaluate_point(expand_points(spec)[0])


class TestRunCampaign:
    def test_jobs_do_not_change_results(self, cold_result):
        parallel = run_campaign(tiny_spec(), jobs=2)
        assert canonical_json(parallel.metrics) == canonical_json(
            cold_result.metrics
        )

    def test_metrics_align_with_points(self, cold_result):
        assert len(cold_result.metrics) == len(cold_result.points) == 4
        assert cold_result.computed == 4
        assert cold_result.cached == 0

    def test_rejects_bad_jobs(self):
        with pytest.raises(CampaignError):
            run_campaign(tiny_spec(), jobs=0)

    def test_progress_callback_sees_every_point(self):
        seen = []
        run_campaign(
            tiny_spec(n_instances=1),
            jobs=1,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (2, 2)


class TestCaching:
    def test_warm_rerun_is_all_hits(self, tmp_path, cold_result):
        cache_dir = tmp_path / "cache"
        first = run_campaign(tiny_spec(), jobs=1, cache_dir=cache_dir)
        second = run_campaign(tiny_spec(), jobs=1, cache_dir=cache_dir)
        assert first.computed == 4 and first.cached == 0
        assert second.computed == 0 and second.cached == 4
        assert second.cache_stats["hits"] == 4
        assert second.cache_stats["misses"] == 0
        assert canonical_json(second.metrics) == canonical_json(
            cold_result.metrics
        )

    def test_killed_campaign_resumes_missing_points_only(self, tmp_path):
        """Half-run the campaign, then restart: the acceptance test."""
        spec = tiny_spec()
        cache = ResultCache(tmp_path / "cache")
        points = expand_points(spec)
        # Simulate a campaign killed halfway: two of four points landed.
        for point in points[:2]:
            cache.put(point, evaluate_point(point))

        instrument.get_registry().reset()
        instrument.enable()
        try:
            resumed = run_campaign(spec, jobs=1, cache=cache)
            counters = instrument.get_registry().snapshot()["counters"]
        finally:
            instrument.disable()
        assert counters["campaign.points.total"] == 4
        assert counters["campaign.points.cached"] == 2
        assert counters["campaign.points.evaluated"] == 2
        assert counters["campaign.cache.hits"] == 2
        assert counters["campaign.cache.misses"] == 2
        # And the resumed result matches a single cold run bit for bit.
        cold = run_campaign(spec, jobs=1)
        assert canonical_json(resumed.metrics) == canonical_json(
            cold.metrics
        )

    def test_extending_a_sweep_recomputes_only_new_points(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_campaign(tiny_spec(), jobs=1, cache_dir=cache_dir)
        extended = tiny_spec(
            sweeps=[
                {
                    "name": "bit_rate",
                    "values": ["2.4 Gbps", "4.8 Gbps", "3.2 Gbps"],
                }
            ]
        )
        result = run_campaign(extended, jobs=1, cache_dir=cache_dir)
        assert result.cached == 4
        assert result.computed == 2

    def test_parallel_run_fills_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_campaign(tiny_spec(), jobs=2, cache_dir=cache_dir)
        second = run_campaign(tiny_spec(), jobs=2, cache_dir=cache_dir)
        assert first.computed == 4
        assert second.computed == 0
