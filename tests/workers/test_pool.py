"""Integration tests for the distributed worker pool.

These run real spawned worker subprocesses (loopback TCP + shared
memory) and hand-rolled fake workers (a raw socket speaking just
enough protocol) to exercise the failure paths — auth rejection,
heartbeat death, requeue, mid-run SIGKILL — without waiting on real
crashes.
"""

import glob
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.campaign.runner import evaluate_point, run_campaign
from repro.campaign.spec import CampaignSpec, expand_points
from repro.errors import CampaignError, WorkerError
from repro.workers import WorkerPool, parse_workers_spec
from repro.workers.pool import PointFailure
from repro.workers.protocol import (
    PROTOCOL_VERSION,
    recv_message,
    send_message,
    worker_cache_identity,
)

TINY = {
    "name": "pool-tiny",
    "scenario": "range",
    "seed": 23,
    "n_instances": 1,
    "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
    "sweeps": [{"name": "bit_rate", "values": ["2.4 Gbps", "4.8 Gbps"]}],
}


def tiny_spec(n_instances=1, rates=("2.4 Gbps", "4.8 Gbps")):
    data = dict(TINY, n_instances=n_instances)
    data["sweeps"] = [{"name": "bit_rate", "values": list(rates)}]
    return CampaignSpec.from_dict(data)


def shm_segments():
    return set(glob.glob("/dev/shm/psm_*")) if os.path.isdir("/dev/shm") else set()


class TestParseWorkersSpec:
    def test_spawn(self):
        assert parse_workers_spec("spawn://3") == {"spawn": 3, "listen": []}

    def test_tcp_and_mixed(self):
        parsed = parse_workers_spec("spawn://2,tcp://0.0.0.0:8761")
        assert parsed["spawn"] == 2
        assert parsed["listen"] == [("0.0.0.0", 8761)]
        assert parse_workers_spec("tcp://:9000")["listen"] == [
            ("0.0.0.0", 9000)
        ]

    @pytest.mark.parametrize(
        "bad",
        ["", "spawn://0", "spawn://x", "tcp://host", "carrier://2", ","],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(WorkerError):
            parse_workers_spec(bad)


def fake_worker_hello(
    port,
    token=None,
    identity=None,
    protocol=PROTOCOL_VERSION,
    shm=False,
):
    """Dial a pool and perform the worker side of the handshake."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    send_message(
        sock,
        {
            "type": "hello",
            "protocol": protocol,
            "token": token,
            "identity": identity or worker_cache_identity(),
            "shm": shm,
            "pid": os.getpid(),
            "host": "fake",
        },
    )
    reply, _frames = recv_message(sock)
    return sock, reply


def listen_port(pool):
    return pool._listeners[-1].getsockname()[1]


class TestHandshake:
    def test_token_rejection(self):
        with WorkerPool("tcp://127.0.0.1:0", token="s3cret") as pool:
            sock, reply = fake_worker_hello(listen_port(pool), token="wrong")
            assert reply["type"] == "error"
            assert "authentication failed" in reply["error"]
            sock.close()
            assert pool.live_workers() == []

    def test_token_accepted(self):
        with WorkerPool("tcp://127.0.0.1:0", token="s3cret") as pool:
            sock, reply = fake_worker_hello(listen_port(pool), token="s3cret")
            assert reply["type"] == "welcome"
            assert reply["protocol"] == PROTOCOL_VERSION
            assert pool.wait_for_workers(timeout=5) == 1
            sock.close()

    def test_identity_mismatch_rejection(self):
        with WorkerPool("tcp://127.0.0.1:0") as pool:
            stale = dict(worker_cache_identity(), salt="repro.campaign/0")
            sock, reply = fake_worker_hello(
                listen_port(pool), identity=stale
            )
            assert reply["type"] == "error"
            assert "cache identity mismatch" in reply["error"]
            sock.close()

    def test_protocol_version_rejection(self):
        with WorkerPool("tcp://127.0.0.1:0") as pool:
            sock, reply = fake_worker_hello(listen_port(pool), protocol=99)
            assert reply["type"] == "error"
            assert "version mismatch" in reply["error"]
            sock.close()

    def test_no_workers_times_out(self):
        with WorkerPool("tcp://127.0.0.1:0", connect_timeout=0.3) as pool:
            with pytest.raises(WorkerError, match="no workers connected"):
                pool.wait_for_workers()


class TestSpawnedWorkers:
    def test_spawn_matches_local_execution(self):
        spec = tiny_spec()
        points = expand_points(spec)
        direct = [evaluate_point(p) for p in points]
        got = {}
        with WorkerPool("spawn://2", deadline=60.0) as pool:
            finished = pool.run(
                points,
                on_result=lambda p, m, d, s: got.__setitem__(p.index, m),
            )
        assert finished
        assert sorted(got) == [p.index for p in points]
        for point, expected in zip(points, direct):
            assert json.dumps(got[point.index], sort_keys=True) == json.dumps(
                expected, sort_keys=True
            )

    def test_run_campaign_workers_byte_identical_to_jobs(self, tmp_path):
        spec = tiny_spec()
        local = run_campaign(spec, jobs=2)
        distributed = run_campaign(
            spec,
            workers="spawn://2",
            cache_dir=str(tmp_path / "cache"),
        )
        assert json.dumps(local.metrics, sort_keys=True) == json.dumps(
            distributed.metrics, sort_keys=True
        )
        assert distributed.statuses == ["computed"] * len(spec_points(spec))
        # A resubmission replays entirely from the cache: the
        # distributed run wrote every computed point through.
        resumed = run_campaign(
            spec,
            workers="spawn://2",
            cache_dir=str(tmp_path / "cache"),
        )
        assert resumed.cached == len(resumed.points)
        assert resumed.cache_stats["hits"] == len(resumed.points)
        assert json.dumps(resumed.metrics, sort_keys=True) == json.dumps(
            local.metrics, sort_keys=True
        )

    def test_sigkill_mid_run_requeues_and_completes(self):
        spec = tiny_spec(n_instances=3)  # 6 points
        points = expand_points(spec)
        before = shm_segments()
        got = {}
        killed = threading.Event()
        with WorkerPool("spawn://2", deadline=60.0) as pool:

            def on_result(point, metrics, duration_s, snapshot):
                got[point.index] = metrics
                if not killed.is_set():
                    killed.set()
                    os.kill(pool._procs[0].pid, signal.SIGKILL)

            finished = pool.run(points, on_result=on_result)
        assert finished
        assert sorted(got) == [p.index for p in points]
        # The killed worker's in-flight points were re-executed with
        # identical results (identity-derived seeding).
        sample = points[0]
        assert json.dumps(got[sample.index], sort_keys=True) == json.dumps(
            evaluate_point(sample), sort_keys=True
        )
        # No orphaned shared-memory blocks survive the kill.
        assert shm_segments() - before == set()

    def test_bad_spec_fails_before_spawning(self):
        with pytest.raises(WorkerError, match="carrier://1"):
            run_campaign(tiny_spec(), workers="carrier://1")


def spec_points(spec):
    return expand_points(spec)


class TestFakeWorkerScheduling:
    """Failure paths driven by a scripted worker on a raw socket."""

    def run_pool_with_fake(self, pool, points, fake, **run_kwargs):
        """Start *fake(sock)* on the accepted connection, then run."""
        port = listen_port(pool)
        box = {}

        def fake_main():
            sock, reply = fake_worker_hello(port, token=pool.token)
            assert reply["type"] == "welcome"
            try:
                fake(sock)
            finally:
                box["sock"] = sock

        thread = threading.Thread(target=fake_main, daemon=True)
        thread.start()
        got = {}
        try:
            finished = pool.run(
                points,
                on_result=lambda p, m, d, s: got.__setitem__(p.index, m),
                **run_kwargs,
            )
        finally:
            thread.join(timeout=10)
        return finished, got

    def test_point_error_raises_point_failure(self):
        points = expand_points(tiny_spec(rates=["2.4 Gbps"]))

        def fake(sock):
            while True:
                envelope, _frames = recv_message(sock)
                if envelope["type"] == "batch":
                    send_message(
                        sock,
                        {
                            "type": "point_error",
                            "index": envelope["points"][0]["index"],
                            "error": "ValueError: synthetic failure",
                        },
                    )
                    return
                if envelope["type"] == "ping":
                    send_message(
                        sock, {"type": "pong", "seq": envelope.get("seq")}
                    )

        with WorkerPool("tcp://127.0.0.1:0") as pool:
            with pytest.raises(PointFailure, match="synthetic failure"):
                self.run_pool_with_fake(pool, points, fake)

    def test_point_failure_surfaces_as_campaign_error(self, monkeypatch):
        # The runner maps a worker-side point failure onto the same
        # CampaignError shape the --jobs pool raises.
        spec = tiny_spec(rates=["2.4 Gbps"])

        def fake_run(self, points, *, collect, on_result, cancel=None):
            raise PointFailure(points[0], "RuntimeError: boom")

        monkeypatch.setattr(WorkerPool, "run", fake_run)
        monkeypatch.setattr(
            WorkerPool, "start", lambda self: self, raising=True
        )
        with pytest.raises(CampaignError, match="boom"):
            run_campaign(spec, workers="tcp://127.0.0.1:0")

    def test_silent_worker_hits_deadline_and_points_requeue(self):
        # One real spawned worker plus one fake worker that accepts a
        # batch and then goes silent: the heartbeat deadline must
        # declare it dead and its points must finish on the survivor.
        spec = tiny_spec(n_instances=2)  # 4 points
        points = expand_points(spec)
        with WorkerPool(
            "spawn://1,tcp://127.0.0.1:0", heartbeat=0.2, deadline=1.5
        ) as pool:
            port = listen_port(pool)
            pool.wait_for_workers(timeout=30)

            hold = threading.Event()

            def fake_main():
                sock, reply = fake_worker_hello(port)
                assert reply["type"] == "welcome"
                hold.wait(timeout=30)  # never answer a ping
                sock.close()

            thread = threading.Thread(target=fake_main, daemon=True)
            thread.start()
            # Give the fake a moment to join so it gets a batch.
            deadline = time.monotonic() + 10
            while len(pool.live_workers()) < 2:
                if time.monotonic() > deadline:
                    pytest.fail("fake worker never joined")
                time.sleep(0.02)
            got = {}
            finished = pool.run(
                points,
                on_result=lambda p, m, d, s: got.__setitem__(p.index, m),
            )
            hold.set()
        assert finished
        assert sorted(got) == [p.index for p in points]

    def test_all_workers_dead_raises(self):
        points = expand_points(tiny_spec(rates=["2.4 Gbps"]))

        def fake(sock):
            envelope, _frames = recv_message(sock)  # first batch
            sock.close()  # die without answering

        with WorkerPool(
            "tcp://127.0.0.1:0", heartbeat=0.2, deadline=1.0
        ) as pool:
            with pytest.raises(WorkerError, match="all workers died"):
                self.run_pool_with_fake(pool, points, fake)

    def test_requeue_cap_gives_up(self):
        points = expand_points(tiny_spec(rates=["2.4 Gbps"]))

        def crash_on_batch(sock):
            # Stay live (answer pings) until handed a point, then die
            # holding it.  Three of these keep at least one worker
            # alive at every moment, so the run fails on the requeue
            # cap, never on "all workers died".
            while True:
                envelope, _frames = recv_message(sock)
                if envelope["type"] == "batch":
                    sock.close()
                    return
                if envelope["type"] == "ping":
                    send_message(
                        sock, {"type": "pong", "seq": envelope.get("seq")}
                    )
                elif envelope["type"] == "shutdown":
                    return

        with WorkerPool(
            "tcp://127.0.0.1:0",
            heartbeat=0.2,
            deadline=10.0,
            max_requeues=1,
        ) as pool:
            port = listen_port(pool)
            threads = []

            def fake_main():
                sock, reply = fake_worker_hello(port)
                if reply.get("type") == "welcome":
                    try:
                        crash_on_batch(sock)
                    except OSError:
                        pass

            for _ in range(3):
                thread = threading.Thread(target=fake_main, daemon=True)
                thread.start()
                threads.append(thread)
            deadline = time.monotonic() + 10
            while len(pool.live_workers()) < 3:
                if time.monotonic() > deadline:
                    pytest.fail("fake workers never joined")
                time.sleep(0.02)
            with pytest.raises(WorkerError, match="requeued"):
                pool.run(points, on_result=lambda *a: None)
            for thread in threads:
                thread.join(timeout=10)
