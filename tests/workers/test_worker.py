"""Tests for the worker daemon driven over an in-process socketpair.

The test plays the pool's side of the protocol by hand against a real
:class:`WorkerSession` running in a thread, so the full serialized
(non-shm) result path — evaluate, encode, frame, decode — is
exercised without subprocesses.
"""

import json
import socket
import threading

import pytest

from repro import instrument
from repro.campaign.runner import evaluate_point
from repro.campaign.spec import CampaignSpec, expand_points
from repro.errors import WorkerError
from repro.workers.protocol import (
    PROTOCOL_VERSION,
    decode_tree,
    point_to_wire,
    recv_message,
    send_message,
)
from repro.workers.worker import WorkerSession

TINY = {
    "name": "worker-tiny",
    "scenario": "range",
    "seed": 31,
    "n_instances": 1,
    "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
    "sweeps": [{"name": "bit_rate", "values": ["2.4 Gbps", "4.8 Gbps"]}],
}


@pytest.fixture
def session():
    """(pool-side socket, running WorkerSession, its thread)."""
    pool_side, worker_side = socket.socketpair()
    worker = WorkerSession(worker_side, shm=False, token="t0k3n")
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    hello, _frames = recv_message(pool_side)
    assert hello["type"] == "hello"
    assert hello["protocol"] == PROTOCOL_VERSION
    assert hello["token"] == "t0k3n"
    assert hello["shm"] is False
    send_message(
        pool_side,
        {
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "name": "w0",
            "heartbeat": 1.0,
            "shm": False,
        },
    )
    yield pool_side, worker, thread
    try:
        send_message(pool_side, {"type": "shutdown"})
    except OSError:
        pass
    thread.join(timeout=30)
    pool_side.close()


def points():
    return expand_points(CampaignSpec.from_dict(TINY))


class TestWorkerSession:
    def test_serialized_results_match_direct_evaluation(self, session):
        pool_side, _worker, _thread = session
        batch = points()
        send_message(
            pool_side,
            {
                "type": "batch",
                "points": [point_to_wire(p) for p in batch],
                "collect": False,
            },
        )
        got = {}
        for _ in batch:
            envelope, frames = recv_message(pool_side)
            assert envelope["type"] == "result"
            assert envelope["duration_s"] > 0
            got[envelope["index"]] = decode_tree(
                envelope["metrics"], frames
            )
        for point in batch:
            assert json.dumps(
                got[point.index], sort_keys=True
            ) == json.dumps(evaluate_point(point), sort_keys=True)

    def test_pings_answered_between_points(self, session):
        pool_side, _worker, _thread = session
        send_message(pool_side, {"type": "ping", "seq": 17})
        reply, _frames = recv_message(pool_side)
        assert reply == {"type": "pong", "seq": 17}

    def test_collect_ships_counter_snapshots(self, session):
        pool_side, _worker, _thread = session
        point = points()[0]
        previously_enabled = instrument.enabled()
        try:
            send_message(
                pool_side,
                {
                    "type": "batch",
                    "points": [point_to_wire(point)],
                    "collect": True,
                },
            )
            envelope, frames = recv_message(pool_side)
        finally:
            if not previously_enabled:
                instrument.disable()
        snapshot = decode_tree(envelope["snapshot"], frames)
        assert snapshot is not None
        assert snapshot["counters"]  # the point ticked kernel counters

    def test_revoke_returns_only_unstarted_points(self, session):
        pool_side, worker, _thread = session
        batch = points()
        send_message(
            pool_side,
            {
                "type": "batch",
                "points": [point_to_wire(p) for p in batch],
                "collect": False,
            },
        )
        send_message(
            pool_side,
            {"type": "revoke", "indices": [p.index for p in batch]},
        )
        revoked = None
        results = 0
        while revoked is None or results < len(batch) - len(revoked):
            envelope, _frames = recv_message(pool_side)
            if envelope["type"] == "revoked":
                revoked = envelope["indices"]
            elif envelope["type"] == "result":
                results += 1
        # Whatever was already computing finished; the rest came back.
        assert results + len(revoked) == len(batch)
        assert set(revoked).issubset({p.index for p in batch})

    def test_failed_point_reported_and_worker_survives(self, session):
        pool_side, _worker, _thread = session
        batch = points()
        broken = point_to_wire(batch[0])
        broken["params"] = {"warp_factor": 9}  # unknown parameter
        send_message(
            pool_side,
            {"type": "batch", "points": [broken], "collect": False},
        )
        envelope, _frames = recv_message(pool_side)
        assert envelope["type"] == "point_error"
        assert "warp_factor" in envelope["error"]
        # The worker keeps serving after a point failure.
        send_message(
            pool_side,
            {
                "type": "batch",
                "points": [point_to_wire(batch[1])],
                "collect": False,
            },
        )
        envelope, frames = recv_message(pool_side)
        assert envelope["type"] == "result"
        assert envelope["index"] == batch[1].index


class TestHandshakeRejection:
    def test_pool_error_reply_raises(self):
        pool_side, worker_side = socket.socketpair()
        worker = WorkerSession(worker_side, shm=False)
        failure = {}

        def run():
            try:
                worker.run()
            except WorkerError as exc:
                failure["exc"] = exc

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        recv_message(pool_side)
        send_message(
            pool_side,
            {"type": "error", "error": "authentication failed: bad token"},
        )
        thread.join(timeout=10)
        pool_side.close()
        assert "authentication failed" in str(failure["exc"])
