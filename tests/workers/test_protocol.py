"""Tests for the worker wire protocol: framing, payload trees, handshake."""

import io
import json

import numpy as np
import pytest

from repro import parallel
from repro.campaign.spec import CampaignSpec, expand_points
from repro.errors import WorkerProtocolError
from repro.signals.waveform import Waveform, WaveformBatch
from repro.workers.protocol import (
    FRAME_BINARY,
    FRAME_JSON,
    MAX_WIRE_BYTES,
    PROTOCOL_VERSION,
    check_token,
    decode_tree,
    encode_tree,
    identity_mismatch,
    pack_frame,
    pack_message,
    point_from_wire,
    point_to_wire,
    read_message,
    worker_cache_identity,
)

TINY = {
    "name": "wire-tiny",
    "scenario": "range",
    "seed": 7,
    "n_instances": 1,
    "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
    "sweeps": [{"name": "bit_rate", "values": ["2.4 Gbps"]}],
}


def reader_for(blob: bytes):
    stream = io.BytesIO(blob)
    return stream.read


class TestFraming:
    def test_message_round_trip(self):
        blob = pack_message(
            {"type": "result", "index": 3, "duration_s": 0.5},
            (b"abc", b""),
        )
        obj, frames = read_message(reader_for(blob))
        assert obj["type"] == "result"
        assert obj["index"] == 3
        assert obj["frames"] == 2
        assert frames == [b"abc", b""]

    def test_envelope_json_is_canonical(self):
        blob = pack_message({"type": "hello", "b": 1, "a": 2})
        payload = blob[5:]
        assert json.loads(payload.decode()) == {"type": "hello", "a": 2, "b": 1}
        # sort_keys: a deterministic wire form regardless of dict order
        assert payload.index(b'"a"') < payload.index(b'"b"')

    def test_unknown_kind_byte_rejected(self):
        blob = pack_frame(FRAME_JSON, b'{"type": "x"}')
        corrupt = bytes([0xFF]) + blob[1:]
        with pytest.raises(WorkerProtocolError, match="kind byte"):
            read_message(reader_for(corrupt))

    def test_oversized_frame_rejected_before_allocation(self):
        import struct

        header = struct.pack(">BI", FRAME_JSON, MAX_WIRE_BYTES + 1)
        with pytest.raises(WorkerProtocolError, match="exceeds"):
            read_message(reader_for(header))

    def test_truncated_stream_rejected(self):
        blob = pack_message({"type": "x"}, (b"full frame body",))
        with pytest.raises(WorkerProtocolError, match="mid-frame"):
            read_message(reader_for(blob[:-4]))

    def test_corrupt_json_rejected(self):
        blob = pack_frame(FRAME_JSON, b"{nope")
        with pytest.raises(WorkerProtocolError, match="corrupt JSON"):
            read_message(reader_for(blob))

    def test_binary_frame_cannot_start_a_message(self):
        blob = pack_frame(FRAME_BINARY, b"raw")
        with pytest.raises(WorkerProtocolError, match="JSON frame"):
            read_message(reader_for(blob))

    def test_message_requires_a_type(self):
        with pytest.raises(WorkerProtocolError, match="'type'"):
            pack_message({"index": 1})

    def test_nan_is_not_wireable(self):
        with pytest.raises(WorkerProtocolError, match="JSON"):
            pack_message({"type": "result", "value": float("nan")})


class TestPayloadTrees:
    def payload(self):
        rng = np.random.default_rng(5)
        wave = Waveform(rng.normal(size=256), 1e-12, t0=3e-12)
        batch = WaveformBatch(
            rng.normal(size=(4, 64)), 2e-12, t0=rng.normal(size=4) * 1e-12
        )
        return {
            "wave": wave,
            "batch": batch,
            "array": rng.normal(size=33),
            "nested": [1, {"f": 2.5, "s": "x"}, None, True],
            "np_scalar": np.float64(1.25),
        }

    def assert_equal_payload(self, original, decoded):
        assert np.array_equal(original["wave"].values, decoded["wave"].values)
        assert decoded["wave"].dt == original["wave"].dt
        assert decoded["wave"].t0 == original["wave"].t0
        assert np.array_equal(
            original["batch"].values, decoded["batch"].values
        )
        assert decoded["batch"].dt == original["batch"].dt
        assert np.array_equal(original["batch"].t0, decoded["batch"].t0)
        assert np.array_equal(original["array"], decoded["array"])
        assert decoded["nested"] == original["nested"]
        assert decoded["np_scalar"] == 1.25
        assert isinstance(decoded["np_scalar"], float)

    def test_serialized_path_round_trip(self):
        original = self.payload()
        frames = []
        encoded = encode_tree(original, frames, use_shm=False)
        # The envelope itself must be pure JSON (no pickle anywhere).
        json.dumps(encoded)
        decoded = decode_tree(encoded, frames)
        self.assert_equal_payload(original, decoded)

    @pytest.mark.skipif(
        not parallel.SHM_AVAILABLE, reason="no shared memory here"
    )
    def test_shm_and_serialized_paths_are_byte_identical(self):
        original = self.payload()
        serialized_frames = []
        via_frames = decode_tree(
            encode_tree(original, serialized_frames, use_shm=False),
            serialized_frames,
        )
        shm_frames = []
        via_shm = decode_tree(
            encode_tree(original, shm_frames, use_shm=True), shm_frames
        )
        for key in ("wave", "batch"):
            assert (
                via_frames[key].values.tobytes()
                == via_shm[key].values.tobytes()
            )
        assert (
            via_frames["array"].tobytes() == via_shm["array"].tobytes()
        )

    def test_corrupt_binary_frame_rejected(self):
        frames = []
        encoded = encode_tree({"a": np.arange(8.0)}, frames, use_shm=False)
        frames[0] = frames[0][:-8]  # drop one float64
        with pytest.raises(WorkerProtocolError, match="declares"):
            decode_tree(encoded, frames)

    def test_bad_frame_index_rejected(self):
        marker = {
            "__repro__": "ndarray",
            "frame": 7,
            "shape": [2],
            "dtype": "float64",
        }
        with pytest.raises(WorkerProtocolError, match="frame index"):
            decode_tree(marker, [])

    def test_unknown_marker_rejected(self):
        with pytest.raises(WorkerProtocolError, match="unknown payload"):
            decode_tree({"__repro__": "warp"}, [])

    def test_reserved_key_rejected_on_encode(self):
        with pytest.raises(WorkerProtocolError, match="reserved"):
            encode_tree({"__repro__": "smuggled"}, [])

    def test_unencodable_type_rejected(self):
        with pytest.raises(WorkerProtocolError, match="cannot encode"):
            encode_tree({"x": object()}, [])


class TestHandshakeHelpers:
    def test_check_token(self):
        assert check_token(None, None)
        assert check_token(None, "anything")  # open pool accepts all
        assert check_token("s3cret", "s3cret")
        assert not check_token("s3cret", "wrong")
        assert not check_token("s3cret", None)
        assert not check_token("s3cret", 42)

    def test_identity_matches_itself(self):
        ours = worker_cache_identity()
        assert identity_mismatch(ours, dict(ours)) is None

    def test_identity_mismatch_names_the_field(self):
        ours = worker_cache_identity()
        theirs = dict(ours, salt="repro.campaign/999")
        message = identity_mismatch(ours, theirs)
        assert "salt" in message
        assert "repro.campaign/999" in message
        assert identity_mismatch(ours, "garbage") is not None

    def test_point_round_trip_preserves_identity(self):
        point = expand_points(CampaignSpec.from_dict(TINY))[0]
        wire = point_to_wire(point)
        json.dumps(wire)  # plain JSON, no pickle
        back = point_from_wire(wire)
        assert back.digest() == point.digest()
        assert back.seed() == point.seed()
        assert back.index == point.index

    def test_malformed_point_rejected(self):
        with pytest.raises(WorkerProtocolError, match="malformed"):
            point_from_wire({"scenario": "range"})

    def test_protocol_version_is_stable(self):
        # Bump deliberately (with a CHANGES note), never accidentally.
        assert PROTOCOL_VERSION == 1
