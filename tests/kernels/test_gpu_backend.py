"""GPU backend specifics: the xp shim and emulate-mode equivalence.

The cross-backend agreement, fusion, batching and streaming suites
already parametrise over ``kernels.available_backends()`` and therefore
exercise the gpu backend's public contract.  This module covers what
those suites cannot: the shim's CuPy-gap helpers (tested against their
numpy ground truth), and the strong emulate-mode guarantee — on the
batched paths the gpu backend is *bit-for-bit* the numpy backend,
because it runs the same operations in the same order on host arrays.
"""

import dataclasses

import numpy as np
import pytest

from repro import instrument, kernels
from repro.core import FineDelayLine
from repro.kernels import gpu_backend, numpy_backend
from repro.kernels import xp as xp_shim
from repro.kernels.cascade import (
    fresh_cascade_state,
    typical_crossing_interval_batch,
)
from repro.signals import prbs_sequence, synthesize_nrz
from repro.signals.waveform import WaveformBatch

EMULATING = not xp_shim.device_available()

emulate_only = pytest.mark.skipif(
    not EMULATING, reason="bit-parity with numpy holds in emulate mode"
)


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = kernels.active_backend()
    yield
    kernels.set_backend(previous)


@pytest.fixture(scope="module")
def stimulus():
    return synthesize_nrz(prbs_sequence(7, 127), 4e9, 1.0 / (4e9 * 16))


def _batch_plan(stimulus, lanes=5, seed=11):
    line = FineDelayLine(n_stages=4, seed=seed)
    batch = WaveformBatch(
        np.tile(stimulus.values, (lanes, 1)), stimulus.dt, np.zeros(lanes)
    )
    rngs = [np.random.default_rng(100 + lane) for lane in range(lanes)]
    vctrls = np.linspace(0.3, 1.2, lanes)
    stages, _ = line._cascade_plan_batch(batch, rngs, vctrls)
    return batch, stages


class TestShimHelpers:
    def test_doubling_scan_matches_maximum_accumulate(self):
        rng = np.random.default_rng(0)
        for shape, axis in (((17,), -1), ((4, 33), 1), ((5, 8), 0), ((1, 1), -1)):
            a = rng.normal(size=shape)
            np.testing.assert_array_equal(
                xp_shim._doubling_scan_max(np, a, axis),
                np.maximum.accumulate(a, axis=axis),
            )

    def test_device_stable_argsort_matches_kind_stable(self):
        rng = np.random.default_rng(1)
        # Heavy ties: few distinct values over many elements.
        a = rng.integers(0, 7, size=501).astype(np.float64)
        np.testing.assert_array_equal(
            xp_shim._device_stable_argsort(np, a),
            np.argsort(a, kind="stable"),
        )
        # No ties, and degenerate sizes.
        b = rng.permutation(64).astype(np.float64)
        np.testing.assert_array_equal(
            xp_shim._device_stable_argsort(np, b),
            np.argsort(b, kind="stable"),
        )
        assert xp_shim._device_stable_argsort(np, np.empty(0)).size == 0
        np.testing.assert_array_equal(
            xp_shim._device_stable_argsort(np, np.array([3.0])), [0]
        )

    def test_expand_segments_matches_repeat(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=9)
        lengths = np.array([3, 0, 2, 5, 0, 0, 1, 4, 2], dtype=np.int64)
        expected = np.repeat(values, lengths)
        np.testing.assert_array_equal(
            gpu_backend._expand_segments(
                np, values, lengths, int(lengths.sum())
            ),
            expected,
        )

    def test_typical_crossing_interval_batch_bit_equal(self, stimulus):
        rng = np.random.default_rng(3)
        v = rng.normal(0.0, 0.3, (6, 801))
        v[3] = 0.25  # no crossings -> 1.0 sentinel
        v[4, :3] = (-0.5, 0.5, -0.5)
        v[4, 3:] = 0.5  # exactly 2 crossings, 1 interval
        dt = stimulus.dt
        np.testing.assert_array_equal(
            gpu_backend._typical_crossing_interval_batch(np, v, dt),
            typical_crossing_interval_batch(v, dt),
        )
        # Degenerate widths take the sentinel path.
        np.testing.assert_array_equal(
            gpu_backend._typical_crossing_interval_batch(
                np, np.zeros((3, 2)), dt
            ),
            np.ones(3),
        )

    def test_to_host_returns_float64_host_arrays(self):
        out = xp_shim.to_host(xp_shim.to_device(np.arange(4, dtype=np.float64)))
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float64


class TestEmulateBitParity:
    """In emulate mode the batched gpu paths ARE the numpy backend."""

    @emulate_only
    def test_batch_cascade_bit_equal_to_numpy_backend(self, stimulus):
        batch, stages = _batch_plan(stimulus)
        expected = numpy_backend.fine_delay_cascade_batch(
            batch.values, stages, stimulus.dt
        )
        actual = gpu_backend.fine_delay_cascade_batch(
            batch.values, stages, stimulus.dt
        )
        assert actual.dtype == np.float64
        np.testing.assert_array_equal(actual, expected)

    @emulate_only
    def test_batch_primitives_bit_equal(self):
        rng = np.random.default_rng(4)
        v = rng.normal(0.0, 0.3, (5, 1201))
        initials = v[:, 0].copy()
        np.testing.assert_array_equal(
            gpu_backend.slew_limit_batch(v, 0.05, initials),
            numpy_backend.slew_limit_batch(v, 0.05, initials),
        )
        floor = np.full_like(v, 0.2)
        extra = np.full_like(v, 0.3)
        hyst = np.full(5, 0.1)
        interval = np.full(5, 2.5e-10)
        np.testing.assert_array_equal(
            gpu_backend.compressive_slew_limit_batch(
                v, floor, extra, 0.04, 1e-11, hyst, 3e9, 2, interval
            ),
            numpy_backend.compressive_slew_limit_batch(
                v, floor, extra, 0.04, 1e-11, hyst, 3e9, 2, interval
            ),
        )

    @emulate_only
    def test_edge_kernels_bit_equal(self):
        rng = np.random.default_rng(5)
        v = rng.normal(0.0, 0.3, 4001)
        ours = gpu_backend.hysteresis_crossings(v, 0.1)
        theirs = numpy_backend.hysteresis_crossings(v, 0.1)
        np.testing.assert_array_equal(ours[0], theirs[0])
        np.testing.assert_array_equal(ours[1], theirs[1])
        ref = np.sort(rng.uniform(0.0, 1e-6, 300))
        out = np.sort(ref + rng.normal(0.0, 1e-11, 300))
        np.testing.assert_array_equal(
            gpu_backend.match_edges(ref, out, 5e-12, 1e-10),
            numpy_backend.match_edges(ref, out, 5e-12, 1e-10),
        )
        assert gpu_backend.nearest_edge_margin(
            ref[:50], out
        ) == numpy_backend.nearest_edge_margin(ref[:50], out)


class TestStreamCarry:
    @emulate_only
    def test_single_unprimed_chunk_equals_monolithic(self, stimulus):
        line = FineDelayLine(n_stages=4, seed=21)
        stages, _ = line._cascade_plan(stimulus, np.random.default_rng(21))
        monolithic = gpu_backend.fine_delay_cascade(
            stimulus.values, stages, stimulus.dt
        )
        streamed = gpu_backend.fine_delay_cascade_stream(
            stimulus.values, stages, stimulus.dt,
            fresh_cascade_state(len(stages)),
        )
        np.testing.assert_array_equal(streamed, monolithic)

    def test_chunked_stream_matches_monolithic_samples(self, stimulus):
        # Chunk the kernel directly (slicing the planned noise per
        # chunk); the carried state must keep the record continuous.
        line = FineDelayLine(n_stages=3, seed=22)
        stages, _ = line._cascade_plan(stimulus, np.random.default_rng(22))
        monolithic = gpu_backend.fine_delay_cascade(
            stimulus.values, stages, stimulus.dt
        )
        states = fresh_cascade_state(len(stages))
        n = stimulus.values.size
        cuts = (0, n // 3, n // 3 + 7, n)
        chunks = []
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            sub = [
                dataclasses.replace(
                    stage,
                    noise=None if stage.noise is None else stage.noise[lo:hi],
                )
                for stage in stages
            ]
            chunks.append(
                gpu_backend.fine_delay_cascade_stream(
                    stimulus.values[lo:hi].copy(), sub, stimulus.dt, states
                )
            )
        streamed = np.concatenate(chunks)
        # Frozen first-chunk statistics differ from whole-record ones,
        # so samples agree loosely (far below the ~0.8 V swing); the
        # delay-level 0.01 ps agreement is asserted for all backends by
        # tests/kernels/test_streaming.py.
        assert streamed.shape == monolithic.shape
        assert float(np.abs(streamed - monolithic).max()) < 0.05
        assert float(np.sqrt(np.mean((streamed - monolithic) ** 2))) < 2e-3

    def test_carry_scalars_are_host_types(self, stimulus):
        line = FineDelayLine(n_stages=2, seed=23)
        stages, _ = line._cascade_plan(stimulus, np.random.default_rng(23))
        states = fresh_cascade_state(len(stages))
        gpu_backend.fine_delay_cascade_stream(
            stimulus.values, stages, stimulus.dt, states
        )
        for carry in states:
            assert isinstance(carry.slew_y, float)
            assert isinstance(carry.elapsed, float)
            assert isinstance(carry.scale, float)
            assert isinstance(carry.comp_state, int)
            assert isinstance(carry.filter_zi, np.ndarray)
            assert carry.primed


class TestInstrumentation:
    def test_cascade_mode_counter_and_dispatch_counter(self, stimulus):
        kernels.set_backend("gpu")
        line = FineDelayLine(n_stages=4, seed=31)
        with instrument.enabled_scope(reset=True) as registry:
            line.process(stimulus)
            counters = registry.snapshot()["counters"]
        mode = xp_shim.mode()
        assert counters[f"kernels.gpu.{mode}_cascades"] == 1
        assert counters["kernels.backend.gpu.calls"] >= 1
        assert counters["kernels.fine_delay_cascade.calls"] == 1

    def test_relax_sweep_counter_advances(self):
        rng = np.random.default_rng(6)
        v = rng.normal(0.0, 0.3, (3, 501))
        with instrument.enabled_scope(reset=True) as registry:
            gpu_backend.slew_limit_batch(v, 0.05, v[:, 0].copy())
            counters = registry.snapshot()["counters"]
        assert counters["kernels.gpu.relax_sweeps"] >= 1


class TestDtypeAudit:
    @pytest.mark.parametrize("lanes", (1, 4))
    def test_gpu_outputs_stay_float64(self, stimulus, lanes):
        kernels.set_backend("gpu")
        line = FineDelayLine(n_stages=4, seed=41)
        if lanes == 1:
            out = line.process(stimulus)
            assert out.values.dtype == np.float64
        else:
            batch = WaveformBatch(
                np.tile(stimulus.values, (lanes, 1)),
                stimulus.dt,
                np.zeros(lanes),
            )
            rngs = [np.random.default_rng(i) for i in range(lanes)]
            out = line.process_batch(batch, rngs)
            assert out.values.dtype == np.float64
