"""Fused-vs-unfused cascade equivalence: the fusion contract.

Contract (see DESIGN.md §"Pipeline fusion"):

* On the **python** backend the fused cascade is **bit-exact** against
  the per-stage path — identical samples, identical time axes, for
  scalar and batch records, static and time-varying (jitter-injection)
  control, any stage count.
* On **numpy** (and **numba**, when installed) the fused path must land
  within 0.01 ps of the per-stage path's measured delay.  (Empirically
  both are bit-exact here too, but only the delay bound is contractual.)
* The ``REPRO_FUSION`` switch selects the path, and the
  ``fine_delay.fused_calls`` / ``fine_delay.unfused_calls`` counters
  prove which one ran.
"""

import numpy as np
import pytest

from repro import instrument, kernels
from repro.analysis import measure_delay
from repro.core import FineDelayLine, calibration_stimulus
from repro.kernels import numba_backend, python_backend
from repro.kernels.cascade import (
    fusion_enabled,
    reset_fusion,
    set_fusion,
    use_fusion,
)
from repro.signals.waveform import Waveform, WaveformBatch

DELAY_TOLERANCE = 0.01e-12

ALL_BACKENDS = kernels.available_backends()
STAGE_COUNTS = (1, 2, 3, 4, 5)


@pytest.fixture(autouse=True)
def _restore_backend_and_fusion():
    backend = kernels.active_backend()
    fusion = fusion_enabled()
    yield
    kernels.set_backend(backend)
    set_fusion(fusion)


def _stimulus(n_bits=63, dt=1e-12):
    return calibration_stimulus(n_bits=n_bits, dt=dt)


def _fused_and_unfused(line_seed, waveform, n_stages, rng_seed=None,
                       vctrl=None):
    """Run identical lines through both paths; return both outputs."""
    outputs = []
    for enabled in (True, False):
        line = FineDelayLine(n_stages=n_stages, seed=line_seed)
        if vctrl is not None:
            line.vctrl = vctrl
        rng = None if rng_seed is None else np.random.default_rng(rng_seed)
        with use_fusion(enabled):
            outputs.append(line.process(waveform, rng))
    return outputs


def _fused_and_unfused_batch(line_seed, batch, n_stages, vctrls=None):
    outputs = []
    for enabled in (True, False):
        line = FineDelayLine(n_stages=n_stages, seed=line_seed)
        rngs = [np.random.default_rng(100 + i) for i in range(batch.n_lanes)]
        with use_fusion(enabled):
            outputs.append(line.process_batch(batch, rngs, vctrls=vctrls))
    return outputs


def _assert_equivalent(fused, unfused, backend):
    """Bit-exact on python; within the delay tolerance elsewhere."""
    assert fused.values.shape == unfused.values.shape
    if backend == "python":
        assert np.array_equal(fused.values, unfused.values)
    else:
        stimulus = _stimulus()
        d_fused = measure_delay(stimulus, fused).delay
        d_unfused = measure_delay(stimulus, unfused).delay
        assert abs(d_fused - d_unfused) < DELAY_TOLERANCE


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("n_stages", STAGE_COUNTS)
def test_scalar_equivalence(backend, n_stages):
    """Fused == unfused for every backend and stage count (shared rng)."""
    kernels.set_backend(backend)
    stimulus = _stimulus()
    fused, unfused = _fused_and_unfused(
        42, stimulus, n_stages, rng_seed=7
    )
    assert fused.t0 == unfused.t0
    assert fused.dt == unfused.dt
    _assert_equivalent(fused, unfused, backend)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_scalar_equivalence_private_rngs(backend):
    """With rng=None each stage draws from its own generator — the fused
    plan must consume the same per-stage streams in the same order."""
    kernels.set_backend(backend)
    stimulus = _stimulus()
    fused, unfused = _fused_and_unfused(99, stimulus, 4, rng_seed=None)
    _assert_equivalent(fused, unfused, backend)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("n_stages", (1, 3, 4))
def test_batch_equivalence(backend, n_stages):
    kernels.set_backend(backend)
    stimulus = _stimulus()
    batch = WaveformBatch(
        np.stack([stimulus.values, -stimulus.values, 0.9 * stimulus.values]),
        stimulus.dt,
        np.array([0.0, 25e-12, 50e-12]),
    )
    fused, unfused = _fused_and_unfused_batch(11, batch, n_stages)
    assert np.array_equal(fused.t0, unfused.t0)
    if backend == "python":
        assert np.array_equal(fused.values, unfused.values)
    else:
        for lane in range(batch.n_lanes):
            d_f = measure_delay(stimulus, fused.lane(lane)).delay
            d_u = measure_delay(stimulus, unfused.lane(lane)).delay
            assert abs(d_f - d_u) < DELAY_TOLERANCE


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_batch_equivalence_per_lane_vctrls(backend):
    """A calibration sweep collapsed to one batch: per-lane control."""
    kernels.set_backend(backend)
    stimulus = _stimulus()
    batch = WaveformBatch(
        np.stack([stimulus.values] * 4),
        stimulus.dt,
        np.zeros(4),
    )
    vctrls = np.array([0.2, 0.6, 1.0, 1.4])
    fused, unfused = _fused_and_unfused_batch(5, batch, 4, vctrls=vctrls)
    if backend == "python":
        assert np.array_equal(fused.values, unfused.values)
    else:
        for lane in range(4):
            d_f = measure_delay(stimulus, fused.lane(lane)).delay
            d_u = measure_delay(stimulus, unfused.lane(lane)).delay
            assert abs(d_f - d_u) < DELAY_TOLERANCE


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_jitter_injection_vctrl_waveform(backend):
    """Time-varying Vctrl (the paper's Sec. 5 jitter-injection mode):
    the fused plan evaluates the control waveform on each stage's own
    delayed time grid, exactly as the per-stage path does."""
    kernels.set_backend(backend)
    stimulus = _stimulus()
    t = stimulus.times()
    vwave = Waveform(
        0.75 + 0.35 * np.sin(2 * np.pi * t / 2e-9),
        stimulus.dt,
        stimulus.t0,
    )
    fused, unfused = _fused_and_unfused(
        3, stimulus, 2, rng_seed=5, vctrl=vwave
    )
    _assert_equivalent(fused, unfused, backend)


def test_numba_module_bit_exact_against_python():
    """The numba fused kernels are transcriptions of the reference: run
    the module's functions directly (undecorated when numba is absent)
    and demand bit-exactness against the python backend."""
    stimulus = _stimulus()
    samples = stimulus.values

    def plan(seed, rng_seed):
        line = FineDelayLine(n_stages=4, seed=seed)
        return line._cascade_plan(stimulus, np.random.default_rng(rng_seed))

    stages_a, _ = plan(42, 9)
    stages_b, _ = plan(42, 9)
    out_py = python_backend.fine_delay_cascade(samples, stages_a, stimulus.dt)
    out_nb = numba_backend.fine_delay_cascade(samples, stages_b, stimulus.dt)
    assert np.array_equal(out_py, out_nb)


def test_numba_module_batch_bit_exact_against_python():
    stimulus = _stimulus()
    values = np.stack([stimulus.values, -stimulus.values])
    batch = WaveformBatch(values, stimulus.dt, np.array([0.0, 1e-10]))

    def plan(seed):
        line = FineDelayLine(n_stages=3, seed=seed)
        rngs = [np.random.default_rng(i) for i in range(2)]
        return line._cascade_plan_batch(batch, rngs, None)

    stages_a, _ = plan(1)
    stages_b, _ = plan(1)
    out_py = python_backend.fine_delay_cascade_batch(
        values, stages_a, batch.dt
    )
    out_nb = numba_backend.fine_delay_cascade_batch(
        values, stages_b, batch.dt
    )
    assert np.array_equal(out_py, out_nb)


# -- the switch and its observability ---------------------------------------


def test_env_switch(monkeypatch):
    monkeypatch.setenv("REPRO_FUSION", "off")
    assert reset_fusion() is False
    monkeypatch.setenv("REPRO_FUSION", "on")
    assert reset_fusion() is True
    monkeypatch.delenv("REPRO_FUSION")
    assert reset_fusion() is True  # default on


def test_env_switch_unrecognised_value_warns(monkeypatch):
    monkeypatch.setenv("REPRO_FUSION", "sideways")
    with pytest.warns(RuntimeWarning):
        assert reset_fusion() is True


def test_counters_distinguish_fused_from_unfused():
    stimulus = _stimulus(n_bits=16)
    line = FineDelayLine(n_stages=2, seed=0)
    with instrument.enabled_scope(reset=True) as registry:
        with use_fusion(True):
            line.process(stimulus, np.random.default_rng(0))
        with use_fusion(False):
            line.process(stimulus, np.random.default_rng(0))
        counters = registry.snapshot()["counters"]
    assert counters["fine_delay.fused_calls"] == 1
    assert counters["fine_delay.unfused_calls"] == 1


def test_fused_path_records_cascade_kernel_op():
    stimulus = _stimulus(n_bits=16)
    line = FineDelayLine(n_stages=2, seed=0)
    with instrument.enabled_scope(reset=True) as registry:
        with use_fusion(True):
            line.process(stimulus, np.random.default_rng(0))
        counters = registry.snapshot()["counters"]
    assert counters.get("kernels.fine_delay_cascade.calls", 0) >= 1
