"""Streamed-vs-monolithic cascade equivalence: the streaming contract.

Contract (see DESIGN.md §"Streaming engine" and the
:mod:`repro.core.streaming` docstring):

* On the **python** backend a primed stream (``prime`` = the
  concatenated chunks) is **bit-exact** against the monolithic
  :meth:`FineDelayLine.process` for *any* split of the record —
  including pathological one-sample chunks.
* On **numpy** (and **numba**, when installed) the streamed output must
  land within 0.01 ps of the monolithic path's measured delay.
* A fresh processor fed the whole record as one chunk equals the
  monolithic path with no priming pass at all (the first chunk *is*
  the whole record, so the frozen statistics match).
* Malformed streams — dt changes, gaps, overlaps, empty chunks,
  priming after data — fail fast with :class:`CircuitError`.
"""

import numpy as np
import pytest

from repro import kernels
from repro.analysis import measure_delay
from repro.core import FineDelayLine, StreamProcessor, calibration_stimulus
from repro.errors import CircuitError, WaveformError
from repro.kernels import python_backend
from repro.kernels.cascade import (
    fresh_cascade_state,
    fusion_enabled,
    set_fusion,
    use_fusion,
)
from repro.signals.waveform import Waveform

DELAY_TOLERANCE = 0.01e-12

ALL_BACKENDS = kernels.available_backends()
STAGE_COUNTS = (1, 2, 4)

# Named record splits, as fractions of the record length.  "uneven"
# lands chunk boundaries mid-edge and mid-filter-transient; "tiny-head"
# starts with a chunk much shorter than the noise filter's warmup.
SPLITS = {
    "halves": (0.5,),
    "uneven": (0.13, 0.31, 0.57, 0.83),
    "tiny-head": (0.002, 0.4),
}


def _stimulus(n_bits=63, dt=1e-12):
    return calibration_stimulus(n_bits=n_bits, dt=dt)


def _chunks(waveform, fractions):
    """Split one record at the given fractional positions."""
    n = len(waveform)
    bounds = [0] + [int(f * n) for f in fractions] + [n]
    out = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        out.append(
            Waveform(
                waveform.values[a:b].copy(),
                waveform.dt,
                waveform.t0 + waveform.dt * a,
            )
        )
    return out


def _streamed(line, waveform, fractions, prime=True, rng=None):
    """Run *waveform* through *line* chunk by chunk; return the
    concatenated output and the per-chunk outputs."""
    processor = line.open_stream(rng=rng)
    if prime:
        processor.prime(waveform)
    outs = [processor.push(c) for c in _chunks(waveform, fractions)]
    values = np.concatenate([o.values for o in outs])
    return Waveform(values, outs[0].dt, outs[0].t0), outs


@pytest.fixture(autouse=True)
def _restore_backend_and_fusion():
    backend = kernels.active_backend()
    fusion = fusion_enabled()
    yield
    kernels.set_backend(backend)
    set_fusion(fusion)


# -- the equivalence contract ------------------------------------------------


@pytest.mark.parametrize("split", sorted(SPLITS))
@pytest.mark.parametrize("n_stages", STAGE_COUNTS)
def test_python_primed_stream_bit_exact(n_stages, split):
    """Primed streaming == monolithic, bit for bit, on any split."""
    kernels.set_backend("python")
    stimulus = _stimulus()
    mono = FineDelayLine(n_stages=n_stages, seed=42).process(stimulus)
    line = FineDelayLine(n_stages=n_stages, seed=42)
    streamed, _ = _streamed(line, stimulus, SPLITS[split])
    assert streamed.dt == mono.dt
    assert streamed.t0 == mono.t0
    assert np.array_equal(streamed.values, mono.values)


def test_python_one_sample_chunks_bit_exact():
    """The pathological split: every chunk is a single sample."""
    kernels.set_backend("python")
    stimulus = _stimulus(n_bits=2, dt=20e-12)
    mono = FineDelayLine(n_stages=2, seed=7).process(stimulus)
    line = FineDelayLine(n_stages=2, seed=7)
    processor = line.open_stream()
    processor.prime(stimulus)
    outs = [
        processor.push(
            Waveform(
                stimulus.values[i : i + 1].copy(),
                stimulus.dt,
                stimulus.t0 + stimulus.dt * i,
            )
        )
        for i in range(len(stimulus))
    ]
    values = np.concatenate([o.values for o in outs])
    assert np.array_equal(values, mono.values)
    assert outs[0].t0 == mono.t0


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_delay_contract_all_backends(backend):
    """Streamed measured delay within 0.01 ps of monolithic on every
    backend (bit-exactness is only contractual on python)."""
    kernels.set_backend(backend)
    stimulus = _stimulus()
    mono = FineDelayLine(n_stages=4, seed=3).process(stimulus)
    line = FineDelayLine(n_stages=4, seed=3)
    streamed, _ = _streamed(line, stimulus, SPLITS["uneven"])
    d_mono = measure_delay(stimulus, mono).delay
    d_stream = measure_delay(stimulus, streamed).delay
    assert abs(d_stream - d_mono) < DELAY_TOLERANCE


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_single_chunk_equals_monolithic_without_prime(backend):
    """Whole record as one chunk: the frozen first-chunk statistics are
    the whole-record statistics, so no priming pass is needed."""
    kernels.set_backend(backend)
    stimulus = _stimulus()
    mono = FineDelayLine(n_stages=4, seed=11).process(stimulus)
    line = FineDelayLine(n_stages=4, seed=11)
    out = line.open_stream().push(stimulus)
    if backend == "python":
        assert np.array_equal(out.values, mono.values)
    else:
        d_mono = measure_delay(stimulus, mono).delay
        d_stream = measure_delay(stimulus, out).delay
        assert abs(d_stream - d_mono) < DELAY_TOLERANCE


def test_streamed_run_is_deterministic():
    """Same line seed, same split -> identical streamed output."""
    kernels.set_backend("python")
    stimulus = _stimulus()
    a, _ = _streamed(
        FineDelayLine(n_stages=3, seed=5), stimulus, SPLITS["uneven"]
    )
    b, _ = _streamed(
        FineDelayLine(n_stages=3, seed=5), stimulus, SPLITS["uneven"]
    )
    assert np.array_equal(a.values, b.values)


def test_explicit_rng_split_invariant_with_prime():
    """An explicit generator is spawned per element, so two different
    splits of the same record agree when both are primed."""
    kernels.set_backend("python")
    stimulus = _stimulus()
    line_a = FineDelayLine(n_stages=3, seed=5)
    a, _ = _streamed(
        line_a, stimulus, SPLITS["halves"], rng=np.random.default_rng(9)
    )
    line_b = FineDelayLine(n_stages=3, seed=5)
    b, _ = _streamed(
        line_b, stimulus, SPLITS["uneven"], rng=np.random.default_rng(9)
    )
    assert np.array_equal(a.values, b.values)


def test_chunk_time_axes_tile_the_monolithic_axis():
    """Each output chunk's t0 lands exactly where the monolithic
    record's time axis puts that sample."""
    kernels.set_backend("python")
    stimulus = _stimulus()
    mono = FineDelayLine(n_stages=2, seed=1).process(stimulus)
    line = FineDelayLine(n_stages=2, seed=1)
    _, outs = _streamed(line, stimulus, SPLITS["uneven"])
    assert outs[0].t0 == mono.t0
    offset = 0
    for out in outs:
        # Association differs (chunk.t0 + shifts vs t0 + dt*offset), so
        # exactness here is to the stream's own contiguity tolerance.
        assert abs(out.t0 - (mono.t0 + mono.dt * offset)) < 1e-6 * mono.dt
        offset += len(out)
    assert offset == len(mono)


def test_jitter_injection_vctrl_waveform_streams_exactly():
    """Time-varying Vctrl: the stream evaluates the control waveform on
    the global time grid, so chunked jitter injection is bit-exact."""
    kernels.set_backend("python")
    stimulus = _stimulus()
    t = stimulus.times()
    vwave = Waveform(
        0.75 + 0.35 * np.sin(2 * np.pi * t / 2e-9),
        stimulus.dt,
        stimulus.t0,
    )
    mono_line = FineDelayLine(n_stages=2, seed=8)
    mono_line.vctrl = vwave
    mono = mono_line.process(stimulus)
    line = FineDelayLine(n_stages=2, seed=8)
    line.vctrl = vwave
    streamed, _ = _streamed(line, stimulus, SPLITS["uneven"])
    assert np.array_equal(streamed.values, mono.values)


def test_stream_matches_both_fusion_settings():
    """The monolithic reference is the same with fusion on or off, so
    the stream agrees with both."""
    kernels.set_backend("python")
    stimulus = _stimulus()
    refs = []
    for enabled in (True, False):
        with use_fusion(enabled):
            refs.append(
                FineDelayLine(n_stages=2, seed=21).process(stimulus)
            )
    line = FineDelayLine(n_stages=2, seed=21)
    streamed, _ = _streamed(line, stimulus, SPLITS["halves"])
    for ref in refs:
        assert np.array_equal(streamed.values, ref.values)


# -- kernel-level: the stream kernel itself ----------------------------------


def test_stream_kernel_single_call_equals_cascade_kernel():
    """``fine_delay_cascade_stream`` on fresh state over the whole
    record is the plain fused cascade."""
    stimulus = _stimulus()
    line = FineDelayLine(n_stages=3, seed=2)
    stages_a, _ = line._cascade_plan(stimulus, np.random.default_rng(4))
    line_b = FineDelayLine(n_stages=3, seed=2)
    stages_b, _ = line_b._cascade_plan(stimulus, np.random.default_rng(4))
    out_plain = python_backend.fine_delay_cascade(
        stimulus.values, stages_a, stimulus.dt
    )
    out_stream = python_backend.fine_delay_cascade_stream(
        stimulus.values,
        stages_b,
        stimulus.dt,
        fresh_cascade_state(len(stages_b)),
    )
    assert np.array_equal(out_plain, out_stream)


def test_stream_kernel_dispatch_rejects_state_mismatch():
    """The dispatcher refuses a state list of the wrong length."""
    stimulus = _stimulus(n_bits=4, dt=10e-12)
    line = FineDelayLine(n_stages=2, seed=0)
    stages, _ = line._cascade_plan(stimulus, np.random.default_rng(0))
    with pytest.raises(CircuitError):
        kernels.fine_delay_cascade_stream(
            stimulus.values, stages, stimulus.dt, fresh_cascade_state(1)
        )


# -- stream validation -------------------------------------------------------


def _open(seed=0):
    return FineDelayLine(n_stages=2, seed=seed).open_stream()


def test_rejects_empty_chunk():
    # Waveform itself refuses empty records; the stream's own guard is
    # a backstop for duck-typed chunks.
    with pytest.raises((CircuitError, WaveformError)):
        _open().push(Waveform(np.empty(0), 1e-12, 0.0))


def test_rejects_dt_change_mid_stream():
    stimulus = _stimulus(n_bits=4, dt=10e-12)
    processor = _open()
    processor.push(stimulus)
    with pytest.raises(CircuitError, match="dt"):
        processor.push(
            Waveform(stimulus.values, 2 * stimulus.dt, stimulus.t_end)
        )


def test_rejects_non_contiguous_chunk():
    stimulus = _stimulus(n_bits=4, dt=10e-12)
    processor = _open()
    processor.push(stimulus)
    gap_t0 = stimulus.t_end + 5 * stimulus.dt
    with pytest.raises(CircuitError, match="contiguous"):
        processor.push(Waveform(stimulus.values, stimulus.dt, gap_t0))


def test_rejects_prime_after_push():
    stimulus = _stimulus(n_bits=4, dt=10e-12)
    processor = _open()
    processor.push(stimulus)
    with pytest.raises(CircuitError, match="prime"):
        processor.prime(stimulus)


def test_samples_processed_counts_input_samples():
    stimulus = _stimulus(n_bits=4, dt=10e-12)
    line = FineDelayLine(n_stages=2, seed=0)
    processor = line.open_stream()
    for chunk in _chunks(stimulus, (0.5,)):
        processor.push(chunk)
    assert processor.samples_processed == len(stimulus)


def test_process_generator_matches_push():
    stimulus = _stimulus(n_bits=8, dt=10e-12)
    chunks = _chunks(stimulus, (0.4,))
    via_push = [
        FineDelayLine(n_stages=2, seed=3).open_stream().push(c)
        for c in [stimulus]
    ]
    line = FineDelayLine(n_stages=2, seed=3)
    via_gen = list(line.process_stream(iter(chunks)))
    assert len(via_gen) == len(chunks)
    joined = np.concatenate([o.values for o in via_gen])
    assert joined.size == len(stimulus)
    assert via_push[0].values.size == len(stimulus)
