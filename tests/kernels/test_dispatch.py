"""Backend selection and dispatch behaviour of repro.kernels."""

import warnings

import numpy as np
import pytest

from repro import instrument, kernels
from repro.errors import CircuitError, KernelError
from repro.kernels import xp as xp_shim


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-wide backend as it found it."""
    previous = kernels.active_backend()
    yield
    kernels.set_backend(previous)


NUMBA_AVAILABLE = "numba" in kernels.available_backends()


class TestAvailability:
    def test_reference_backends_always_available(self):
        backends = kernels.available_backends()
        assert "python" in backends
        assert "numpy" in backends

    def test_backend_names_superset(self):
        assert set(kernels.available_backends()) <= set(kernels.BACKEND_NAMES)


class TestSelection:
    def test_set_backend_returns_resolved_name(self):
        assert kernels.set_backend("python") == "python"
        assert kernels.active_backend() == "python"

    def test_auto_prefers_fastest_available(self):
        resolved = kernels.set_backend("auto")
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert resolved == expected

    def test_unknown_backend_raises(self):
        with pytest.raises(KernelError):
            kernels.set_backend("fortran")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_missing_numba_raises_when_explicit(self):
        with pytest.raises(KernelError):
            kernels.set_backend("numba")

    def test_use_backend_restores_previous(self):
        kernels.set_backend("numpy")
        with kernels.use_backend("python") as resolved:
            assert resolved == "python"
            assert kernels.active_backend() == "python"
        assert kernels.active_backend() == "numpy"

    def test_use_backend_restores_on_error(self):
        kernels.set_backend("numpy")
        with pytest.raises(RuntimeError):
            with kernels.use_backend("python"):
                raise RuntimeError("boom")
        assert kernels.active_backend() == "numpy"


class TestEnvironmentOverride:
    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "python")
        assert kernels.reset_backend() == "python"
        assert kernels.active_backend() == "python"

    def test_env_var_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "auto")
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert kernels.reset_backend() == expected

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_env_var_degrades_gracefully(self, monkeypatch):
        # CI matrices export REPRO_KERNELS=numba unconditionally; a
        # pure-python environment must warn and fall back, not crash.
        monkeypatch.setenv("REPRO_KERNELS", "numba")
        with pytest.warns(RuntimeWarning):
            assert kernels.reset_backend() == "numpy"


class TestUnknownEnvValue:
    def test_unknown_env_value_raises_listing_backends(self, monkeypatch):
        # A typo must not silently run a different backend.
        monkeypatch.setenv("REPRO_KERNELS", "cuda")
        with pytest.raises(KernelError) as excinfo:
            kernels.reset_backend()
        message = str(excinfo.value)
        assert "REPRO_KERNELS" in message
        assert "'cuda'" in message
        for name in ("python", "numpy", "numba", "gpu", "auto"):
            assert name in message

    def test_set_backend_unknown_name_lists_gpu(self):
        with pytest.raises(KernelError, match="gpu"):
            kernels.set_backend("fortran")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_known_but_unavailable_still_degrades(self, monkeypatch):
        # The raise is only for *unknown* names: a known backend that is
        # merely unavailable keeps the warn-and-fall-back contract.
        monkeypatch.setenv("REPRO_KERNELS", "numba")
        with pytest.warns(RuntimeWarning):
            assert kernels.reset_backend() == "numpy"


class TestFallbackChains:
    """numba-absent -> numpy and cupy-absent -> gpu-emulate chains."""

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_numba_absent_env_chain_lands_on_numpy_with_counter(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNELS", "numba")
        with pytest.warns(RuntimeWarning):
            assert kernels.reset_backend() == "numpy"
        with instrument.enabled_scope(reset=True) as registry:
            kernels.slew_limit(np.zeros(8), max_step=0.1)
            counters = registry.snapshot()["counters"]
        assert counters["kernels.backend.numpy.calls"] == 1
        assert "kernels.backend.numba.calls" not in counters

    @pytest.mark.skipif(
        xp_shim.device_available(), reason="a CUDA device is present"
    )
    def test_cupy_absent_gpu_selects_with_emulate_warning_and_counter(self):
        # The gpu backend never falls through to another backend name --
        # emulation *is* the fallback: the same module runs on numpy.
        xp_shim.reset()
        try:
            with pytest.warns(RuntimeWarning, match="emulate"):
                assert kernels.set_backend("gpu") == "gpu"
            xp_mod, chosen = xp_shim.resolve()
            assert chosen == "emulate"
            assert xp_mod is np
            with instrument.enabled_scope(reset=True) as registry:
                kernels.slew_limit(np.zeros(8), max_step=0.1)
                counters = registry.snapshot()["counters"]
            assert counters["kernels.backend.gpu.calls"] == 1
        finally:
            xp_shim.resolve()  # leave the shim committed, warning spent

    @pytest.mark.skipif(
        xp_shim.device_available(), reason="a CUDA device is present"
    )
    def test_emulate_warning_is_one_time(self):
        xp_shim.reset()
        with pytest.warns(RuntimeWarning):
            kernels.set_backend("gpu")
        # Re-selecting gpu must not warn again.
        kernels.set_backend("numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernels.set_backend("gpu") == "gpu"
            kernels.slew_limit(np.zeros(4), max_step=1.0)

    @pytest.mark.skipif(
        xp_shim.device_available(), reason="a CUDA device is present"
    )
    def test_gpu_env_selection_emulates(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "gpu")
        xp_shim.reset()
        try:
            with pytest.warns(RuntimeWarning, match="emulate"):
                assert kernels.reset_backend() == "gpu"
            assert kernels.active_backend() == "gpu"
        finally:
            xp_shim.resolve()


class TestWrapperValidation:
    @pytest.mark.parametrize("backend", kernels.available_backends())
    def test_slew_limit_rejects_bad_step(self, backend):
        with kernels.use_backend(backend):
            with pytest.raises(CircuitError):
                kernels.slew_limit(np.zeros(4), max_step=0.0)

    @pytest.mark.parametrize("backend", kernels.available_backends())
    def test_compressive_rejects_bad_step(self, backend):
        with kernels.use_backend(backend):
            with pytest.raises(CircuitError):
                kernels.compressive_slew_limit(
                    np.ones(4), np.ones(4), np.ones(4),
                    max_step=-1.0, dt=1e-12, hysteresis=0.1,
                    corner=6e9, order=3,
                )

    @pytest.mark.parametrize("backend", kernels.available_backends())
    def test_kernels_accept_non_float_input(self, backend):
        with kernels.use_backend(backend):
            out = kernels.slew_limit([0, 1, 2, 3], max_step=10.0)
        np.testing.assert_allclose(out, [0.0, 1.0, 2.0, 3.0])

    @pytest.mark.parametrize("backend", kernels.available_backends())
    def test_empty_edge_sets(self, backend):
        with kernels.use_backend(backend):
            assert kernels.match_edges(
                np.empty(0), np.array([1.0]), 0.0, 1.0
            ).size == 0
            assert kernels.nearest_edge_margin(
                np.empty(0), np.array([1.0])
            ) == float("inf")
