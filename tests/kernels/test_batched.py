"""Property tests: batched kernels equal their per-lane counterparts.

Contract (see DESIGN.md, "Kernel layer"):

* On ``python`` (and ``numba``, whose jitted loops transcribe the
  reference), a batched call is **bit-exact** against running each
  lane through the single-lane kernel.
* On ``numpy`` the batched compressive decomposition is vectorised
  across lanes, so samples may disagree with the per-lane call by
  rounding only (tolerance-bounded, far below physical scales).
* End-to-end, batched simulation paths must preserve the 0.01 ps
  cross-backend delay-measurement contract.

The corpora reuse the seeded-grid idiom of
``test_backend_agreement.py``: deterministic, CI-stable, spanning the
signal regimes the simulator produces.
"""

import numpy as np
import pytest

from repro import kernels
from repro.analysis import measure_delay, measure_delays_batch
from repro.circuits import VariableGainBuffer, limiting_stage_batch, spawn_rngs
from repro.core import calibration_stimulus
from repro.signals import WaveformBatch

ALL_BACKENDS = tuple(kernels.available_backends())
ALTERNATES = tuple(name for name in ALL_BACKENDS if name != "python")

#: Backends whose batched kernels must match per-lane calls bit for bit.
EXACT_BACKENDS = tuple(
    name for name in ALL_BACKENDS if name in ("python", "numba")
)


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = kernels.active_backend()
    yield
    kernels.set_backend(previous)


def _lane_corpus(n_lanes=5, n=700, seed=2026):
    """Seeded stack of lanes mixing the simulator's signal regimes."""
    rng = np.random.default_rng(seed)
    lanes = []
    for lane in range(n_lanes):
        kind = lane % 4
        if kind == 0:
            period = rng.uniform(8, 200)
            v = np.tanh(
                np.sign(np.sin(2 * np.pi * np.arange(n) / period))
                * rng.uniform(0.5, 4.0)
            )
        elif kind == 1:
            v = rng.uniform(0.1, 1.0) * np.sin(
                2 * np.pi * np.arange(n) / rng.uniform(50, 600)
            )
        elif kind == 2:
            v = np.cumsum(rng.normal(0, rng.uniform(0.01, 0.3), n))
        else:
            v = rng.normal(0, rng.uniform(0.1, 1.0), n)
        lanes.append(v)
    return np.asarray(lanes)


def _compressive_args(values, seed=1964):
    rng = np.random.default_rng(seed)
    n_lanes, n = values.shape
    return dict(
        target_floor=np.full((n_lanes, n), rng.uniform(0.05, 0.2)),
        target_extra=np.abs(np.tanh(values)) * rng.uniform(0.1, 0.6),
        max_step=float(rng.uniform(0.01, 0.3)),
        dt=1e-12,
        hysteresis=rng.uniform(0.0, 0.4, n_lanes),
        corner=float(rng.uniform(1e9, 20e9)),
        order=int(rng.integers(1, 5)),
        initial_interval=rng.uniform(20e-12, 1.0, n_lanes),
    )


class TestSlewLimitBatch:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_matches_per_lane(self, backend):
        values = _lane_corpus()
        max_step = 0.07
        initial = np.linspace(-0.5, 0.5, values.shape[0])
        with kernels.use_backend(backend):
            batched = kernels.slew_limit_batch(values, max_step, initial)
            lanes = [
                kernels.slew_limit(values[i], max_step, float(initial[i]))
                for i in range(values.shape[0])
            ]
        for i, lane in enumerate(lanes):
            if backend in EXACT_BACKENDS:
                np.testing.assert_array_equal(batched[i], lane)
            else:
                np.testing.assert_allclose(
                    batched[i], lane, atol=1e-12, rtol=0
                )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_default_initial_is_first_sample(self, backend):
        values = _lane_corpus(n_lanes=3, n=200, seed=9)
        with kernels.use_backend(backend):
            batched = kernels.slew_limit_batch(values, 0.05)
        np.testing.assert_array_equal(batched[:, 0], values[:, 0])

    def test_batched_python_is_reference_for_numpy(self):
        # Cross-backend: batched numpy vs batched python within the
        # single-lane agreement tolerance.
        values = _lane_corpus(seed=31)
        with kernels.use_backend("python"):
            reference = kernels.slew_limit_batch(values, 0.04)
        with kernels.use_backend("numpy"):
            vectorised = kernels.slew_limit_batch(values, 0.04)
        np.testing.assert_allclose(vectorised, reference, atol=1e-9, rtol=0)


class TestCompressiveSlewLimitBatch:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_matches_per_lane(self, backend):
        values = _lane_corpus()
        args = _compressive_args(values)
        with kernels.use_backend(backend):
            batched = kernels.compressive_slew_limit_batch(values, **args)
            lanes = [
                kernels.compressive_slew_limit(
                    values[i],
                    target_floor=args["target_floor"][i],
                    target_extra=args["target_extra"][i],
                    max_step=args["max_step"],
                    dt=args["dt"],
                    hysteresis=float(args["hysteresis"][i]),
                    corner=args["corner"],
                    order=args["order"],
                    initial_interval=float(args["initial_interval"][i]),
                )
                for i in range(values.shape[0])
            ]
        for i, lane in enumerate(lanes):
            if backend in EXACT_BACKENDS:
                np.testing.assert_array_equal(batched[i], lane)
            else:
                np.testing.assert_allclose(
                    batched[i], lane, atol=1e-12, rtol=0
                )

    def test_cross_backend_agreement(self):
        values = _lane_corpus(seed=47)
        args = _compressive_args(values, seed=3)
        with kernels.use_backend("python"):
            reference = kernels.compressive_slew_limit_batch(values, **args)
        for backend in ALTERNATES:
            with kernels.use_backend(backend):
                other = kernels.compressive_slew_limit_batch(values, **args)
            if backend in EXACT_BACKENDS:
                np.testing.assert_array_equal(other, reference)
            else:
                np.testing.assert_allclose(
                    other, reference, atol=1e-9, rtol=0
                )


class TestRaggedKernelBatches:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_match_edges_batch_matches_per_lane(self, backend):
        rng = np.random.default_rng(777)
        ref = np.sort(rng.uniform(0, 20e-9, 50))
        out_sets = [
            np.sort(rng.uniform(0, 20e-9, int(rng.integers(10, 80))))
            for _ in range(6)
        ]
        coarses = rng.normal(0, 200e-12, 6)
        window = 400e-12
        with kernels.use_backend(backend):
            batched = kernels.match_edges_batch(ref, out_sets, coarses, window)
            lanes = [
                kernels.match_edges(ref, out_sets[i], float(coarses[i]), window)
                for i in range(6)
            ]
        assert len(batched) == 6
        for got, expected in zip(batched, lanes):
            np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_hysteresis_crossings_batch_matches_per_lane(self, backend):
        values = _lane_corpus(n_lanes=4, n=1500, seed=42)
        hysteresis = np.linspace(0.05, 0.6, 4)
        with kernels.use_backend(backend):
            batched = kernels.hysteresis_crossings_batch(values, hysteresis)
            lanes = [
                kernels.hysteresis_crossings(values[i], float(hysteresis[i]))
                for i in range(4)
            ]
        for (pos, rising), (ref_pos, ref_rising) in zip(batched, lanes):
            np.testing.assert_array_equal(pos, ref_pos)
            np.testing.assert_array_equal(rising, ref_rising)


class TestBatchedStageEquivalence:
    """Batched circuit stages vs per-lane sequential, per-lane streams."""

    @pytest.mark.parametrize("backend", EXACT_BACKENDS)
    def test_limiting_stage_batch_bit_exact(self, backend):
        stimulus = calibration_stimulus(n_bits=31, dt=1e-12)
        buffer = VariableGainBuffer(vctrl=0.8, seed=5)
        n_lanes = 3
        batch = WaveformBatch.tiled(stimulus, n_lanes)
        with kernels.use_backend(backend):
            rngs = spawn_rngs(np.random.default_rng(11), n_lanes)
            batched = limiting_stage_batch(
                batch, buffer.params.amplitude_from_vctrl(0.8),
                buffer.params, rngs
            )
            rngs = spawn_rngs(np.random.default_rng(11), n_lanes)
            from repro.circuits.vga_buffer import limiting_stage

            lanes = [
                limiting_stage(
                    stimulus,
                    float(buffer.params.amplitude_from_vctrl(0.8)),
                    buffer.params,
                    rngs[i],
                )
                for i in range(n_lanes)
            ]
        for i, lane in enumerate(lanes):
            np.testing.assert_array_equal(batched.lane(i).values, lane.values)
            assert batched.lane(i).t0 == lane.t0

    def test_limiting_stage_batch_numpy_tolerance(self):
        stimulus = calibration_stimulus(n_bits=31, dt=1e-12)
        buffer = VariableGainBuffer(vctrl=0.8, seed=5)
        n_lanes = 3
        batch = WaveformBatch.tiled(stimulus, n_lanes)
        if "numpy" not in ALL_BACKENDS:
            pytest.skip("numpy backend unavailable")
        with kernels.use_backend("numpy"):
            rngs = spawn_rngs(np.random.default_rng(11), n_lanes)
            batched = buffer.process_batch(batch, rngs)
            rngs = spawn_rngs(np.random.default_rng(11), n_lanes)
            lanes = [buffer.process(stimulus, rngs[i]) for i in range(n_lanes)]
        for i, lane in enumerate(lanes):
            np.testing.assert_allclose(
                batched.lane(i).values, lane.values, atol=1e-9, rtol=0
            )


class TestBatchedDelayContract:
    """The 0.01 ps cross-backend contract holds on batched paths."""

    DELAY_TOLERANCE = 0.01e-12

    def _batched_delays(self, backend):
        with kernels.use_backend(backend):
            stimulus = calibration_stimulus(n_bits=63, dt=1e-12)
            buffer = VariableGainBuffer(vctrl=0.9, seed=7)
            batch = WaveformBatch.tiled(stimulus, 3)
            rngs = spawn_rngs(np.random.default_rng(3), 3)
            out = buffer.process_batch(batch, rngs)
            return [m.delay for m in measure_delays_batch(stimulus, out)]

    def test_batched_delay_measurement_across_backends(self):
        reference = self._batched_delays("python")
        for backend in ALTERNATES:
            delays = self._batched_delays(backend)
            for got, expected in zip(delays, reference):
                assert got == pytest.approx(
                    expected, abs=self.DELAY_TOLERANCE
                )

    def test_measure_delays_batch_equals_measure_delay(self):
        stimulus = calibration_stimulus(n_bits=63, dt=1e-12)
        buffer = VariableGainBuffer(vctrl=0.7, seed=2)
        rngs = spawn_rngs(np.random.default_rng(8), 3)
        outputs = [buffer.process(stimulus, rngs[i]) for i in range(3)]
        batched = measure_delays_batch(stimulus, outputs)
        for lane, result in zip(outputs, batched):
            single = measure_delay(stimulus, lane)
            assert result.delay == single.delay
            assert result.std == single.std
            assert result.n_edges == single.n_edges
