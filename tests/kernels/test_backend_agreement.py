"""Property tests: every kernel backend computes the same physics.

Contract (see DESIGN.md, "Kernel layer"):

* ``numba`` vs ``python`` — **bit-exact**: the jitted loops are
  transcriptions of the reference loops, executing the same IEEE-754
  operations in the same order.
* ``numpy`` vs ``python`` — tolerance-bounded: the event-vectorised
  algebra is identical but the evaluation order differs, so samples may
  disagree by rounding (bounded far below any physical scale here).
* End-to-end, all backends must agree on delay measurements within
  0.01 ps on this corpus.

The corpus is a seeded grid (deterministic, CI-stable) spanning the
regimes the simulator actually produces — tanh-limited data edges,
slow sine targets, random walks, white noise, constants — plus
hypothesis sweeps for the scalar-parameter spaces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.analysis import measure_delay
from repro.circuits import VariableGainBuffer
from repro.core import EventDelayModel, FineDelayLine, calibration_stimulus
from repro.signals import crossing_times_hysteresis, synthesize_nrz

ALTERNATES = tuple(
    name for name in kernels.available_backends() if name != "python"
)


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = kernels.active_backend()
    yield
    kernels.set_backend(previous)


def _target_corpus():
    """Seeded grid of (values, max_step, initial) slew-limiter cases."""
    rng = np.random.default_rng(2008)
    cases = []
    for trial in range(60):
        n = int(rng.integers(2, 4000))
        kind = trial % 5
        if kind == 0:  # tanh-limited data edges (the simulator's diet)
            period = rng.uniform(8, 200)
            v = np.tanh(
                np.sign(np.sin(2 * np.pi * np.arange(n) / period))
                * rng.uniform(0.5, 4.0)
            )
        elif kind == 1:  # slow sine
            v = rng.uniform(0.1, 1.0) * np.sin(
                2 * np.pi * np.arange(n) / rng.uniform(50, 2000)
            )
        elif kind == 2:  # random walk
            v = np.cumsum(rng.normal(0, rng.uniform(0.001, 0.3), n))
        elif kind == 3:  # white noise
            v = rng.normal(0, rng.uniform(0.1, 1.0), n)
        else:  # constant
            v = np.full(n, rng.normal())
        max_step = float(rng.uniform(0.002, 0.8))
        initial = None if trial % 2 else float(rng.normal())
        cases.append((v, max_step, initial))
    return cases


def _compressive_corpus():
    rng = np.random.default_rng(1964)
    cases = []
    for trial in range(40):
        n = int(rng.integers(2, 4000))
        period = rng.uniform(10, 400)
        v = np.sin(2 * np.pi * np.arange(n) / period)
        v += rng.normal(0, 0.2, n)
        floor = np.full(n, rng.uniform(0.05, 0.2))
        extra = np.abs(np.tanh(v)) * rng.uniform(0.1, 0.6)
        cases.append(
            dict(
                v_in=v,
                target_floor=floor,
                target_extra=extra,
                max_step=float(rng.uniform(0.01, 0.3)),
                dt=1e-12,
                hysteresis=float(rng.uniform(0.0, 0.4)),
                corner=float(rng.uniform(1e9, 20e9)),
                order=int(rng.integers(1, 5)),
                initial_interval=float(rng.uniform(20e-12, 1.0)),
            )
        )
    return cases


def _edge_corpus():
    rng = np.random.default_rng(777)
    cases = []
    for _ in range(60):
        n_ref = int(rng.integers(1, 80))
        n_out = int(rng.integers(1, 80))
        ref = np.sort(rng.uniform(0, 20e-9, n_ref))
        out = np.sort(rng.uniform(0, 20e-9, n_out))
        coarse = float(rng.normal(0, 200e-12))
        window = float(rng.uniform(5e-12, 2e-9))
        cases.append((ref, out, coarse, window))
    return cases


def _run_on(backend, func, *args, **kwargs):
    with kernels.use_backend(backend):
        return func(*args, **kwargs)


class TestSlewLimitAgreement:
    @pytest.mark.parametrize("backend", ALTERNATES)
    def test_corpus_agreement(self, backend):
        exact = backend == "numba"
        for v, max_step, initial in _target_corpus():
            reference = _run_on("python", kernels.slew_limit, v, max_step, initial)
            other = _run_on(backend, kernels.slew_limit, v, max_step, initial)
            if exact:
                np.testing.assert_array_equal(other, reference)
            else:
                np.testing.assert_allclose(
                    other, reference, atol=1e-9, rtol=0
                )

    @given(
        st.floats(min_value=0.005, max_value=0.5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_walks_agree(self, max_step, seed):
        rng = np.random.default_rng(seed)
        v = np.cumsum(rng.normal(0, 0.1, 400))
        reference = _run_on("python", kernels.slew_limit, v, max_step)
        vectorised = _run_on("numpy", kernels.slew_limit, v, max_step)
        np.testing.assert_allclose(vectorised, reference, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("backend", ALTERNATES)
    def test_slew_constraint_holds(self, backend):
        # Whatever the backend, the defining invariant must hold.
        rng = np.random.default_rng(5)
        v = rng.normal(0, 1, 1000)
        out = _run_on(backend, kernels.slew_limit, v, 0.05)
        assert np.max(np.abs(np.diff(out))) <= 0.05 + 1e-12


class TestCompressiveAgreement:
    @pytest.mark.parametrize("backend", ALTERNATES)
    def test_corpus_agreement(self, backend):
        exact = backend == "numba"
        for case in _compressive_corpus():
            reference = _run_on(
                "python", kernels.compressive_slew_limit, **case
            )
            other = _run_on(backend, kernels.compressive_slew_limit, **case)
            if exact:
                np.testing.assert_array_equal(other, reference)
            else:
                np.testing.assert_allclose(
                    other, reference, atol=1e-9, rtol=0
                )


class TestEdgeKernelAgreement:
    @pytest.mark.parametrize("backend", ALTERNATES)
    def test_match_edges_corpus(self, backend):
        for ref, out, coarse, window in _edge_corpus():
            reference = _run_on(
                "python", kernels.match_edges, ref, out, coarse, window
            )
            other = _run_on(
                backend, kernels.match_edges, ref, out, coarse, window
            )
            assert other.shape == reference.shape
            np.testing.assert_allclose(other, reference, atol=1e-18, rtol=0)

    @pytest.mark.parametrize("backend", ALTERNATES)
    def test_hysteresis_corpus(self, backend):
        rng = np.random.default_rng(42)
        for _ in range(40):
            n = int(rng.integers(2, 3000))
            v = np.sin(2 * np.pi * np.arange(n) / rng.uniform(10, 400))
            v += rng.normal(0, 0.3, n)
            hysteresis = float(rng.uniform(0.01, 1.2))
            ref_pos, ref_rising = _run_on(
                "python", kernels.hysteresis_crossings, v, hysteresis
            )
            pos, rising = _run_on(
                backend, kernels.hysteresis_crossings, v, hysteresis
            )
            np.testing.assert_array_equal(pos, ref_pos)
            np.testing.assert_array_equal(rising, ref_rising)

    @pytest.mark.parametrize("backend", ALTERNATES)
    def test_nearest_margin_corpus(self, backend):
        rng = np.random.default_rng(314)
        for _ in range(40):
            probe = np.sort(rng.uniform(0, 1e-8, int(rng.integers(1, 50))))
            data = np.sort(rng.uniform(0, 1e-8, int(rng.integers(1, 50))))
            a = _run_on("python", kernels.nearest_edge_margin, probe, data)
            b = _run_on(backend, kernels.nearest_edge_margin, probe, data)
            assert a == b


class TestEndToEndAgreement:
    """The acceptance contract: delay measurements agree to 0.01 ps."""

    DELAY_TOLERANCE = 0.01e-12

    def _measured_delay(self, backend):
        with kernels.use_backend(backend):
            stimulus = calibration_stimulus(n_bits=63, dt=1e-12)
            buffer = VariableGainBuffer(vctrl=0.9, seed=7)
            out = buffer.process(stimulus, np.random.default_rng(3))
            return measure_delay(stimulus, out).delay

    def test_buffer_delay_measurement_across_backends(self):
        reference = self._measured_delay("python")
        for backend in ALTERNATES:
            delay = self._measured_delay(backend)
            assert delay == pytest.approx(
                reference, abs=self.DELAY_TOLERANCE
            )

    def test_hysteresis_extraction_on_noisy_buffer_output(self):
        stimulus = calibration_stimulus(n_bits=31, dt=1e-12)
        buffer = VariableGainBuffer(vctrl=0.75, seed=1)
        out = buffer.process(stimulus, np.random.default_rng(9))
        results = {}
        for backend in ("python",) + ALTERNATES:
            with kernels.use_backend(backend):
                results[backend] = crossing_times_hysteresis(
                    out, threshold=0.0, hysteresis=0.05
                )
        reference = results["python"]
        assert reference.size > 10
        for backend in ALTERNATES:
            assert results[backend].shape == reference.shape
            np.testing.assert_allclose(
                results[backend], reference, atol=1e-17, rtol=0
            )

    def test_fine_delay_line_vs_event_model_after_kernel_swap(self):
        # The documented waveform-vs-event tolerance (25 ps, see
        # tests/core/test_event_model.py) must survive the kernel swap
        # on every backend.
        stimulus = synthesize_nrz(
            [0, 1, 1, 0, 1, 0, 0, 1] * 4, 2.4e9, 1e-12
        )
        model = EventDelayModel()
        for backend in ("python",) + ALTERNATES:
            with kernels.use_backend(backend):
                line = FineDelayLine(seed=11)
                line.vctrl = 0.75
                out = line.process(stimulus, np.random.default_rng(2))
                measured = measure_delay(stimulus, out).delay
            predicted = model.total_delay(0.75, half_period=1 / 2.4e9)
            assert predicted == pytest.approx(measured, abs=25e-12)


class TestDroppedEdgeRobustness:
    @pytest.mark.parametrize("backend", ("python",) + ALTERNATES)
    def test_unique_matching_on_all_backends(self, backend):
        # Out trace misses one edge; the duplicate-grant bias must be
        # gone on every backend.
        period = 100e-12
        ref = period * np.arange(10)
        delay = 40e-12
        out = np.delete(ref + delay, 5)
        with kernels.use_backend(backend):
            offsets = kernels.match_edges(ref, out, delay, 1.5 * period)
        assert offsets.size == 9
        np.testing.assert_allclose(offsets, delay, atol=1e-18)
