"""Setup shim for environments whose pip cannot do PEP 660 editable installs."""
from setuptools import setup

setup()
