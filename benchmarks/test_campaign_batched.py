"""Benchmarks of lane-packed campaign evaluation.

Three claims are measured on a 64-point range campaign:

* packing amortises fused-kernel dispatch: one ``--batch-lanes auto``
  run issues at least 3x fewer fused cascade calls than the scalar
  run it replaces (measured ~16x: 64 points collapse into 4 packs),
* the packed run's metrics match the scalar run's per point — byte
  for byte on the python backend, within the 0.01 ps drift budget on
  the array backends (the lane-parallel relaxation rounds differently
  from the scalar event walk in the last ulp), and
* packing never costs wall-clock: the packed run finishes within
  noise of the scalar run.  On host numpy the scalar path is already
  sweep-fused per point, so packing is wall-clock-neutral there; the
  dispatch amortisation is what the GPU backend turns into device
  residency.

The end-to-end variant drives ``python -m repro.campaign run`` the
way CI and users do, comparing ``--batch-lanes 1`` against ``auto``
report payloads.
"""

import json
import math
import subprocess
import sys
import time

import pytest

from repro import instrument
from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.spec import canonical_json
from repro.kernels import active_backend

#: Absolute drift budget for delay-like metrics on array backends —
#: the campaign engine's cross-backend guarantee (0.01 ps).
DRIFT_TOL = 1e-14

#: Packed wall-clock must stay within this factor of scalar.  The
#: claim is "never slower"; the margin absorbs CI timer noise.
WALL_CLOCK_SLACK = 1.5

SPEC = {
    "name": "bench-batched",
    "scenario": "range",
    "seed": 77,
    "n_instances": 16,
    "base": {"n_bits": 32, "n_points": 5, "measure_jitter": False},
    "sweeps": [
        {
            "name": "bit_rate",
            "values": ["2.0 Gbps", "2.4 Gbps", "3.2 Gbps", "4.0 Gbps"],
        }
    ],
}


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec.from_dict(SPEC)


def _values_match(a, b) -> bool:
    """Equal up to the cross-backend drift budget on floats."""
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=DRIFT_TOL)
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _values_match(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _values_match(x, y) for x, y in zip(a, b)
        )
    return a == b


def assert_metrics_match(packed, scalar) -> None:
    if active_backend() == "python":
        assert canonical_json(packed) == canonical_json(scalar)
    else:
        assert _values_match(packed, scalar), (
            "packed metrics drifted past the 0.01 ps budget"
        )


def _timed_run(spec, batch_lanes):
    registry = instrument.Registry()
    start = time.perf_counter()
    with instrument.registry_scope(registry):
        result = run_campaign(spec, batch_lanes=batch_lanes)
    elapsed = time.perf_counter() - start
    return result, elapsed, registry.snapshot()["counters"]


def test_perf_campaign_batched_dispatch_amortization(benchmark, spec):
    """Packed 64-point campaign: >= 3x fewer fused kernel dispatches,
    matching metrics, wall-clock within noise of scalar."""
    scalar, scalar_time, scalar_counters = _timed_run(spec, 1)
    holder = {}

    def packed_run():
        holder["packed"] = _timed_run(spec, "auto")
        return holder["packed"][0]

    benchmark.pedantic(packed_run, rounds=1, iterations=1)
    packed, packed_time, packed_counters = holder["packed"]

    assert_metrics_match(packed.metrics, scalar.metrics)

    scalar_calls = scalar_counters.get("fine_delay.fused_calls", 0)
    packed_calls = packed_counters.get("fine_delay.fused_calls", 0)
    packs = packed_counters.get("campaign.packs.evaluated", 0)
    lanes = packed_counters.get("campaign.pack_lanes", 0)
    ratio = packed_time and scalar_time / packed_time
    print(
        f"\ncampaign {spec.n_points()} points: scalar {scalar_time:.2f} s "
        f"({scalar_calls} fused calls), packed {packed_time:.2f} s "
        f"({packed_calls} fused calls, {packs} packs, {lanes} lanes), "
        f"wall-clock {ratio:.2f}x, dispatch amortization "
        f"{scalar_calls / max(1, packed_calls):.0f}x"
    )
    if active_backend() == "python":
        # Packing resolves to scalar on the pure-python backend (no
        # batch axis to fuse over) — nothing to amortise.
        assert packs == 0
        return
    assert packs >= 1
    assert lanes == spec.n_points()
    assert scalar_counters.get("campaign.packs.evaluated", 0) == 0
    assert scalar_calls >= 3 * packed_calls, (
        f"packing only amortised {scalar_calls}/{packed_calls} fused "
        "dispatches; expected >= 3x"
    )
    assert packed_time <= WALL_CLOCK_SLACK * scalar_time, (
        f"packed run {packed_time:.2f} s is slower than scalar "
        f"{scalar_time:.2f} s beyond the {WALL_CLOCK_SLACK}x noise margin"
    )


def test_perf_campaign_batched_end_to_end(spec, tmp_path):
    """``campaign run --batch-lanes auto`` reproduces ``--batch-lanes 1``
    payloads without costing wall-clock."""
    spec_path = tmp_path / "spec.json"
    spec.save(spec_path)

    def cli_run(lanes: str):
        report_path = tmp_path / f"report-{lanes}.json"
        start = time.perf_counter()
        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.campaign",
                "run",
                str(spec_path),
                "--batch-lanes",
                lanes,
                "--report",
                str(report_path),
                "--quiet",
            ],
            check=True,
        )
        elapsed = time.perf_counter() - start
        with open(report_path) as handle:
            return json.load(handle)["payload"], elapsed

    scalar_payload, scalar_time = cli_run("1")
    packed_payload, packed_time = cli_run("auto")
    ratio = scalar_time / packed_time
    print(
        f"\nend-to-end campaign run: --batch-lanes 1 {scalar_time:.2f} s, "
        f"auto {packed_time:.2f} s, {ratio:.2f}x"
    )
    assert_metrics_match(packed_payload, scalar_payload)
    assert packed_time <= WALL_CLOCK_SLACK * scalar_time, (
        f"packed CLI run {packed_time:.2f} s vs scalar {scalar_time:.2f} s "
        f"exceeds the {WALL_CLOCK_SLACK}x noise margin"
    )
