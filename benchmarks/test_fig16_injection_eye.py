"""Benchmark: Fig. 16 — jitter injection with 900 mV Gaussian noise."""


def test_fig16_injection_eye(figure_bench):
    figure_bench("fig16")
