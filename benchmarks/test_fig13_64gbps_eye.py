"""Benchmark: Fig. 13 — 6.4 Gbps eye through the complete circuit."""


def test_fig13_64gbps_eye(figure_bench):
    figure_bench("fig13")
