"""Benchmark: extension — sinusoidal (SJ) injection bandwidth."""


def test_ext_sj_injection(figure_bench):
    figure_bench("ext_sj")
