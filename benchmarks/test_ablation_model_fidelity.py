"""Benchmark: ablation — waveform vs event model fidelity and speed."""


def test_ablation_model_fidelity(figure_bench):
    figure_bench("ablation_model")
