"""Benchmark: extension — common vs per-stage control sensitivity."""


def test_ext_per_stage_control(figure_bench):
    figure_bench("ext_per_stage")
