"""Benchmark: extension — forwarded-clock centering (Fig. 1)."""


def test_ext_clock_centering(figure_bench):
    figure_bench("ext_clock_centering")
