"""Benchmark: application B — sub-ps resolution via the 12-bit DAC."""


def test_app_resolution(figure_bench):
    figure_bench("app_resolution")
