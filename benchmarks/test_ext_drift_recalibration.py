"""Benchmark: extension — calibration staleness under drift."""


def test_ext_drift_recalibration(figure_bench):
    figure_bench("ext_drift")
