"""Benchmark: ablation — coarse step size vs delay coverage."""


def test_ablation_coarse_step(figure_bench):
    figure_bench("ablation_coarse_step")
