"""Benchmark: Fig. 9 — coarse tap delays (0/33/70/95 ps)."""


def test_fig09_coarse_taps(figure_bench):
    figure_bench("fig09")
