"""GPU backend benchmarks: whole-cascade batched execution on device.

The gpu backend runs the fused N-stage cascade end-to-end on the
array module picked by :mod:`repro.kernels.xp` — CuPy when a CUDA
device is visible, numpy ("emulate mode") otherwise.  These rows
track both regimes:

* On a machine with a device, the 256-lane batched cascade must be
  **>= 10x** faster than the numpy fused path (the tentpole
  acceptance), and the device rows record absolute per-batch costs.
* On CI machines without a device the device rows skip cleanly and
  the emulate rows record numbers instead; emulate mode must stay
  within **1.2x** of the numpy backend (it is the same code path on
  host arrays, so anything slower than that is shim overhead).
"""

import time

import numpy as np
import pytest

from repro import kernels
from repro.core import FineDelayLine, calibrate_fine_delay
from repro.kernels import xp as xp_shim
from repro.kernels.cascade import use_fusion
from repro.signals import prbs_sequence, synthesize_nrz
from repro.signals.waveform import WaveformBatch

DEVICE = xp_shim.device_available()

device_only = pytest.mark.skipif(
    not DEVICE, reason="no CUDA device: emulate rows record instead"
)


def _best_of(fn, repeats: int = 5) -> float:
    """Smallest wall-clock of *repeats* calls (CI-noise-resistant).

    Each timed call ends with :func:`xp_shim.synchronize` so queued
    device work is charged to the call that launched it (a no-op in
    emulate mode).
    """
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        xp_shim.synchronize()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def prbs7_stimulus():
    """CI-sized record: PRBS7 at 4 Gbps, 8 samples per bit."""
    return synthesize_nrz(prbs_sequence(7, 127), 4e9, 1.0 / (4e9 * 8))


def _lane_batch(stimulus, lanes):
    batch = WaveformBatch.tiled(stimulus, lanes)
    rngs = [np.random.default_rng(1000 + lane) for lane in range(lanes)]
    vctrls = np.linspace(0.2, 1.4, lanes)
    return batch, rngs, vctrls


@pytest.mark.parametrize("lanes", (64, 256, 1024))
def test_perf_gpu_batched_cascade(benchmark, prbs7_stimulus, lanes):
    """Absolute cost of the whole-cascade batched run on the gpu
    backend, one row per lane count (device or emulate — the mode is
    recorded in ``extra_info`` so artifact diffs compare like with
    like)."""
    batch, rngs, vctrls = _lane_batch(prbs7_stimulus, lanes)
    with kernels.use_backend("gpu"):
        line = FineDelayLine(n_stages=4, seed=7)
        benchmark.extra_info["kernel_backend"] = "gpu"
        benchmark.extra_info["xp_mode"] = xp_shim.mode()
        benchmark.extra_info["lanes"] = lanes

        def run():
            with use_fusion(True):
                out = line.process_batch(batch, rngs, vctrls=vctrls)
            xp_shim.synchronize()
            return out

        if lanes >= 1024:
            out = benchmark.pedantic(run, rounds=3, iterations=1)
        else:
            out = benchmark(run)
    assert out.values.shape == batch.values.shape
    assert out.values.dtype == np.float64


def test_perf_gpu_calibration_grid(benchmark, prbs7_stimulus):
    """Whole-Vctrl-grid calibration (Fig. 7 sweep) as one batched
    device pass through the gpu backend."""
    with kernels.use_backend("gpu"):
        line = FineDelayLine(n_stages=4, seed=7)
        benchmark.extra_info["kernel_backend"] = "gpu"
        benchmark.extra_info["xp_mode"] = xp_shim.mode()

        def run():
            table = calibrate_fine_delay(
                line,
                stimulus=prbs7_stimulus,
                n_points=13,
                rng=np.random.default_rng(0xCA1),
            )
            xp_shim.synchronize()
            return table

        table = benchmark(run)
    assert table.vctrls.size == 13
    assert np.isfinite(table.delays).all()


@device_only
def test_perf_gpu_device_speedup_vs_numpy_fused(prbs7_stimulus):
    """Tentpole acceptance: on a real device the 256-lane batched
    cascade is >= 10x the numpy fused path."""
    batch, rngs, vctrls = _lane_batch(prbs7_stimulus, 256)

    def timed(backend):
        with kernels.use_backend(backend):
            line = FineDelayLine(n_stages=4, seed=7)

            def run():
                with use_fusion(True):
                    line.process_batch(batch, rngs, vctrls=vctrls)

            run()  # warm: JIT/device alloc/plan caches outside the clock
            return _best_of(run)

    gpu_time = timed("gpu")
    numpy_time = timed("numpy")
    speedup = numpy_time / gpu_time
    print(
        f"\n256-lane cascade: numpy {numpy_time * 1e3:.1f} ms, "
        f"gpu {gpu_time * 1e3:.1f} ms, {speedup:.2f}x"
    )
    assert speedup >= 10.0, (
        f"gpu batched cascade only {speedup:.2f}x faster than numpy "
        f"fused ({gpu_time * 1e3:.1f} ms vs {numpy_time * 1e3:.1f} ms)"
    )


@pytest.mark.skipif(DEVICE, reason="parity bound applies to emulate mode")
def test_perf_gpu_emulate_parity_with_numpy(prbs7_stimulus):
    """Emulate mode is the numpy backend behind a thin shim; the shim
    must cost <= 1.2x on the 64-lane batched cascade."""
    batch, rngs, vctrls = _lane_batch(prbs7_stimulus, 64)

    def timed(backend):
        with kernels.use_backend(backend):
            line = FineDelayLine(n_stages=4, seed=7)

            def run():
                with use_fusion(True):
                    line.process_batch(batch, rngs, vctrls=vctrls)

            run()
            return _best_of(run)

    gpu_time = timed("gpu")
    numpy_time = timed("numpy")
    ratio = gpu_time / numpy_time
    print(
        f"\n64-lane cascade: numpy {numpy_time * 1e3:.1f} ms, "
        f"gpu-emulate {gpu_time * 1e3:.1f} ms, ratio {ratio:.2f}x"
    )
    assert ratio <= 1.2, (
        f"gpu emulate mode {ratio:.2f}x slower than the numpy backend "
        f"({gpu_time * 1e3:.1f} ms vs {numpy_time * 1e3:.1f} ms)"
    )
