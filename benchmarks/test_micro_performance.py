"""Microbenchmarks of the simulation hot paths.

Unlike the figure benchmarks (single-shot experiments), these are true
repeated-measurement microbenchmarks tracking the cost of the inner
loops: slew tracking, one full buffer stage, waveform synthesis, and
the edge-matched delay measurement.

The hot loops dispatch through :mod:`repro.kernels`, so the kernel
benchmarks are parametrised over every backend importable in this
environment (``python`` reference, ``numpy`` event-vectorised, and
``numba`` when the ``fast`` extra is installed).  Compare with::

    PYTHONPATH=src python -m pytest benchmarks/test_micro_performance.py \
        --benchmark-group-by=func

The end-to-end benchmark runs the paper's headline application — an
8-channel bus deskewed to < 5 ps — under the fastest available backend.
"""

import time

import numpy as np
import pytest

from repro import kernels
from repro.analysis import measure_delay
from repro.ate import DeskewController, ParallelBus
from repro.circuits import VariableGainBuffer
from repro.circuits.vga_buffer import slew_limit
from repro.core import FineDelayLine, calibrate_fine_delay, calibration_stimulus
from repro.signals import prbs_sequence, synthesize_nrz

BACKENDS = kernels.available_backends()


@pytest.fixture(scope="module")
def stimulus():
    return calibration_stimulus(n_bits=127, dt=1e-12)


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Run the benchmark under each available kernel backend."""
    with kernels.use_backend(request.param) as name:
        yield name


def test_perf_slew_limit(benchmark, backend):
    target = np.sin(np.linspace(0, 300.0, 50_000)) * 0.4
    benchmark.extra_info["kernel_backend"] = backend
    result = benchmark(slew_limit, target, 0.05)
    assert len(result) == len(target)


def test_perf_buffer_stage(benchmark, backend, stimulus):
    buffer = VariableGainBuffer(vctrl=0.75, seed=1)
    benchmark.extra_info["kernel_backend"] = backend

    def run():
        return buffer.process(stimulus, np.random.default_rng(2))

    out = benchmark(run)
    assert out.amplitude() > 0.1


def test_perf_nrz_synthesis(benchmark):
    bits = prbs_sequence(7, 500)
    out = benchmark(synthesize_nrz, bits, 6.4e9, 1e-12)
    assert len(out) > 0


def test_perf_measure_delay(benchmark, backend, stimulus):
    shifted = stimulus.shifted(40e-12)
    benchmark.extra_info["kernel_backend"] = backend
    result = benchmark(measure_delay, stimulus, shifted)
    assert result.delay == pytest.approx(40e-12, abs=1e-15)


def test_perf_hysteresis_extraction(benchmark, backend, stimulus):
    from repro.signals import crossing_times_hysteresis

    buffer = VariableGainBuffer(vctrl=0.75, seed=1)
    out = buffer.process(stimulus, np.random.default_rng(2))
    benchmark.extra_info["kernel_backend"] = backend
    edges = benchmark(crossing_times_hysteresis, out, 0.0, 0.05)
    assert edges.size > 10


def test_perf_deskew_8_channels(benchmark):
    """End-to-end: calibrate and deskew the paper's 8-channel bus.

    Exercises every layer at once — NRZ synthesis, the buffer chain
    per channel, edge extraction, delay measurement, and the iterated
    correction loop — under the fastest available kernel backend.
    """
    with kernels.use_backend("auto"):
        bus = ParallelBus(n_channels=8, seed=42)
        bus.calibrate_delay_lines(n_points=5)
        controller = DeskewController(bus, n_bits=40, max_iterations=2)

        def run():
            return controller.deskew(rng=np.random.default_rng(7))

        report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.final_spread < 200e-12


def _best_of(fn, repeats: int = 7) -> float:
    """Smallest wall-clock time of *repeats* calls, in seconds.

    Minimum (not mean) so that scheduler noise on a shared CI box
    cannot inflate either side of a speedup ratio.
    """
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_perf_batched_bus_acquire_speedup():
    """Rendering all 8 bus channels as one batch beats the channel loop.

    The sequential loop pays the Python-level call and kernel-dispatch
    overhead of every circuit stage once per channel; the batched path
    pays it once per stage, sharing each array pass across the lanes.
    The PR 2 acceptance bar is a >= 3x speedup on the numpy backend at
    scope-grade sampling.
    """
    with kernels.use_backend("numpy"):
        bus = ParallelBus(n_channels=8, skew_spread=150e-12, seed=7)
        pattern = bus.training_bits(63)

        def batched():
            bus.acquire(
                pattern, rng=np.random.default_rng(3), dt=1e-11, batch=True
            )

        def looped():
            bus.acquire(
                pattern, rng=np.random.default_rng(3), dt=1e-11, batch=False
            )

        batched()
        looped()
        batch_time = _best_of(batched)
        loop_time = _best_of(looped)
    speedup = loop_time / batch_time
    print(
        f"\nacquire 8ch: loop {loop_time * 1e3:.1f} ms, "
        f"batch {batch_time * 1e3:.1f} ms, {speedup:.2f}x"
    )
    assert speedup >= 3.0, (
        f"batched acquire only {speedup:.2f}x faster than the loop "
        f"({batch_time * 1e3:.1f} ms vs {loop_time * 1e3:.1f} ms)"
    )


def test_perf_batched_calibration_sweep_speedup():
    """One batched 13-point Vctrl sweep beats the point-by-point loop.

    Same acceptance bar as the bus acquisition: >= 3x on the numpy
    backend.  The batch renders the whole control-voltage grid as one
    WaveformBatch pass and measures every lane against the stimulus
    from a single batched record.
    """
    with kernels.use_backend("numpy"):
        stimulus = calibration_stimulus(n_bits=24, dt=1e-11)
        line = FineDelayLine(seed=3)

        def batched():
            calibrate_fine_delay(
                line,
                stimulus=stimulus,
                n_points=13,
                rng=np.random.default_rng(2),
                batch=True,
            )

        def looped():
            calibrate_fine_delay(
                line,
                stimulus=stimulus,
                n_points=13,
                rng=np.random.default_rng(2),
                batch=False,
            )

        batched()
        looped()
        batch_time = _best_of(batched)
        loop_time = _best_of(looped)
    speedup = loop_time / batch_time
    print(
        f"\ncalibrate 13pt: loop {loop_time * 1e3:.1f} ms, "
        f"batch {batch_time * 1e3:.1f} ms, {speedup:.2f}x"
    )
    assert speedup >= 3.0, (
        f"batched calibration only {speedup:.2f}x faster than the loop "
        f"({batch_time * 1e3:.1f} ms vs {loop_time * 1e3:.1f} ms)"
    )
