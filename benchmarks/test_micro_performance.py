"""Microbenchmarks of the simulation hot paths.

Unlike the figure benchmarks (single-shot experiments), these are true
repeated-measurement microbenchmarks tracking the cost of the inner
loops: slew tracking, one full buffer stage, waveform synthesis, and
the edge-matched delay measurement.
"""

import numpy as np
import pytest

from repro.analysis import measure_delay
from repro.circuits import VariableGainBuffer
from repro.circuits.vga_buffer import slew_limit
from repro.core import calibration_stimulus
from repro.signals import prbs_sequence, synthesize_nrz


@pytest.fixture(scope="module")
def stimulus():
    return calibration_stimulus(n_bits=127, dt=1e-12)


def test_perf_slew_limit(benchmark):
    target = np.sin(np.linspace(0, 300.0, 50_000)) * 0.4
    result = benchmark(slew_limit, target, 0.05)
    assert len(result) == len(target)


def test_perf_buffer_stage(benchmark, stimulus):
    buffer = VariableGainBuffer(vctrl=0.75, seed=1)
    rng = np.random.default_rng(2)
    out = benchmark(buffer.process, stimulus, rng)
    assert out.amplitude() > 0.1


def test_perf_nrz_synthesis(benchmark):
    bits = prbs_sequence(7, 500)
    out = benchmark(synthesize_nrz, bits, 6.4e9, 1e-12)
    assert len(out) > 0


def test_perf_measure_delay(benchmark, stimulus):
    shifted = stimulus.shifted(40e-12)
    result = benchmark(measure_delay, stimulus, shifted)
    assert result.delay == pytest.approx(40e-12, abs=1e-15)
