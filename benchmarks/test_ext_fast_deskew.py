"""Benchmark: extension — event-model deskew backend."""


def test_ext_fast_deskew(figure_bench):
    figure_bench("ext_fast_deskew")
