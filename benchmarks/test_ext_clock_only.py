"""Benchmark: extension — clock-phase-only baseline vs data deskew."""


def test_ext_clock_only(figure_bench):
    figure_bench("ext_clock_only")
