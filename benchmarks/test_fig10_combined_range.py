"""Benchmark: Fig. 10 — combined circuit total range and programming."""


def test_fig10_combined_range(figure_bench):
    figure_bench("fig10")
