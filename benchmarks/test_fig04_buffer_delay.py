"""Benchmark: Fig. 4/5 — single-buffer amplitude-dependent delay."""


def test_fig04_buffer_delay(figure_bench):
    figure_bench("fig04")
