"""Benchmark: ablation — TJ p-p vs acquisition depth."""


def test_ablation_tj_depth(figure_bench):
    figure_bench("ablation_tj_depth")
