"""Benchmarks of the distributed worker pool.

Two claims are measured on a compute-bound campaign spec:

* sharding across 2 spawned workers beats 1 worker by >= 1.8x
  wall-clock (the scheduler keeps both busy and the tail is
  rebalanced by work stealing) — asserted only on multi-core hosts,
  recorded everywhere;
* the sharded results are byte-identical to the single-worker run
  (per-point identity seeding makes the schedule invisible).

Worker-process boot (python + numpy import) is excluded from the
timed region: the pool is started and fully connected before the
clock starts, matching how a long campaign amortises startup.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.campaign.spec import CampaignSpec, expand_points
from repro.signals.waveform import WaveformBatch
from repro.workers import WorkerPool
from repro.workers.protocol import decode_tree, encode_tree

#: Compute-bound: 8 points x ~0.25 s each, no caching anywhere.
SPEC = {
    "name": "bench-workers",
    "scenario": "range",
    "seed": 177,
    "n_instances": 4,
    "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
    "sweeps": [{"name": "bit_rate", "values": ["2.4 Gbps", "4.8 Gbps"]}],
}


def run_sharded(workers_spec, points):
    """Time pool.run only (workers already booted and connected)."""
    got = {}
    with WorkerPool(workers_spec, deadline=120.0) as pool:
        pool.start()
        pool.wait_for_workers(timeout=120)
        t0 = time.perf_counter()
        finished = pool.run(
            points,
            on_result=lambda p, m, d, s: got.__setitem__(p.index, m),
        )
        elapsed = time.perf_counter() - t0
    assert finished
    return elapsed, got


def test_perf_two_spawn_workers_throughput():
    points = expand_points(CampaignSpec.from_dict(SPEC))
    one_t, one_got = run_sharded("spawn://1", points)
    two_t, two_got = run_sharded("spawn://2", points)
    assert sorted(one_got) == sorted(two_got) == [p.index for p in points]
    assert json.dumps(one_got, sort_keys=True) == json.dumps(
        two_got, sort_keys=True
    )
    speedup = one_t / two_t
    print(
        f"\n  spawn://1: {one_t:.2f} s   spawn://2: {two_t:.2f} s   "
        f"speedup: {speedup:.2f}x  (cores: {os.cpu_count()})"
    )
    if (os.cpu_count() or 1) >= 2:
        # On a multi-core host two workers must nearly halve the
        # wall-clock of a compute-bound campaign.
        assert speedup >= 1.8, (
            f"2 spawned workers only {speedup:.2f}x over 1 "
            f"(want >= 1.8x): {one_t:.2f}s -> {two_t:.2f}s"
        )


def test_perf_wire_codec_round_trip(benchmark):
    """Serialized (non-shm) result codec on a waveform-heavy payload."""
    rng = np.random.default_rng(3)
    payload = {
        "batch": WaveformBatch(
            rng.normal(size=(8, 4096)), 1e-12, t0=np.zeros(8)
        ),
        "metrics": {"total_range_s": 1.47e-10, "points": 9},
    }

    def round_trip():
        frames = []
        encoded = encode_tree(payload, frames, use_shm=False)
        return decode_tree(encoded, frames)

    decoded = benchmark.pedantic(round_trip, rounds=5, iterations=2)
    assert np.array_equal(
        decoded["batch"].values, payload["batch"].values
    )
