"""Benchmark: Fig. 15 — delay range vs frequency, 2- vs 4-stage."""


def test_fig15_range_vs_freq(figure_bench):
    figure_bench("fig15")
