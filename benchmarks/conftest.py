"""Shared harness for the per-figure benchmarks.

Each benchmark runs one experiment runner exactly once (the runners are
full experiments, not microbenchmarks), prints the paper-vs-measured
table, and asserts every shape check recorded by the runner.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.experiments import RUNNERS


@pytest.fixture
def figure_bench(benchmark):
    """Run a named experiment under pytest-benchmark and verify it."""

    def _run(name: str, fast: bool = False):
        runner = RUNNERS[name]
        result = benchmark.pedantic(
            lambda: runner(fast=fast), rounds=1, iterations=1
        )
        print()
        print(result.format_table())
        assert result.all_checks_pass, (
            f"{name}: failed shape checks: {result.failed_checks()}"
        )
        return result

    return _run
