"""Shared harness for the per-figure benchmarks.

Each benchmark runs one experiment runner exactly once (the runners are
full experiments, not microbenchmarks), prints the paper-vs-measured
table, and asserts every shape check recorded by the runner.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import json
import platform

import pytest

from repro import instrument
from repro.experiments import RUNNERS


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "write per-test wall-clock call durations (seconds, keyed "
            "by node id) as JSON to PATH"
        ),
    )


def pytest_configure(config):
    config._bench_durations = {}
    config._bench_kernels = {}


@pytest.fixture(autouse=True)
def _bench_kernel_counters(request):
    """Record each benchmark's kernel counters into the ``--bench-json``
    payload.

    Benchmarks reuse the :mod:`repro.instrument` registry — the same
    counters the experiment manifests carry — so a timing regression in
    the JSON artifact can be read next to how many kernel calls/samples
    the test actually dispatched, and to which backend.
    """
    instrument.get_registry().reset()
    with instrument.enabled_scope():
        yield
    snapshot = instrument.get_registry().snapshot()
    request.config._bench_kernels[request.node.nodeid] = (
        instrument.kernel_stats(snapshot["counters"])
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call":
        item.config._bench_durations[report.nodeid] = {
            "duration_s": report.duration,
            "outcome": report.outcome,
        }


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if not path:
        return
    tests = {}
    for nodeid, entry in session.config._bench_durations.items():
        tests[nodeid] = dict(entry)
        kernels = session.config._bench_kernels.get(nodeid)
        if kernels is not None:
            tests[nodeid]["kernels"] = kernels
    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "tests": tests,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture
def figure_bench(benchmark):
    """Run a named experiment under pytest-benchmark and verify it."""

    def _run(name: str, fast: bool = False):
        runner = RUNNERS[name]
        result = benchmark.pedantic(
            lambda: runner(fast=fast), rounds=1, iterations=1
        )
        print()
        print(result.format_table())
        assert result.all_checks_pass, (
            f"{name}: failed shape checks: {result.failed_checks()}"
        )
        return result

    return _run
