#!/usr/bin/env python
"""Diff two ``--bench-json`` artifacts and fail on wall-clock regressions.

CI runs the benchmark suite with ``--bench-json`` every build and
archives the result.  This script compares the fresh artifact against
the previous build's and exits non-zero when any benchmark shared by
both files slowed down by more than the threshold (default 25 %)::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--threshold 0.25] [--min-seconds 0.05]

Design choices, all aimed at zero false alarms on shared CI boxes:

* Only node ids present in **both** files are compared — new, renamed
  and deleted benchmarks never trip the gate.
* Benchmarks faster than ``--min-seconds`` on the baseline are skipped:
  a 20 ms test timed on a busy runner can double without meaning
  anything.
* Only tests that **passed** in both runs are compared.
* A missing or unreadable baseline (first build, expired artifact,
  schema change) is a clean exit 0 with a notice — the gate can never
  wedge the pipeline.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_tests(path: str):
    """Return the ``tests`` mapping of a bench-json file, or ``None``."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"compare_bench: cannot read {path!r}: {error}")
        return None
    tests = payload.get("tests")
    if not isinstance(tests, dict):
        print(f"compare_bench: {path!r} has no 'tests' mapping")
        return None
    return tests


def compare(baseline, current, threshold: float, min_seconds: float):
    """Return (regressions, improvements, compared) comparing durations."""
    regressions = []
    improvements = []
    compared = 0
    for nodeid in sorted(set(baseline) & set(current)):
        before = baseline[nodeid]
        after = current[nodeid]
        if before.get("outcome") != "passed" or after.get("outcome") != "passed":
            continue
        t_before = float(before.get("duration_s", 0.0))
        t_after = float(after.get("duration_s", 0.0))
        if t_before < min_seconds:
            continue
        compared += 1
        ratio = t_after / t_before if t_before > 0 else float("inf")
        entry = (nodeid, t_before, t_after, ratio)
        if ratio > 1.0 + threshold:
            regressions.append(entry)
        elif ratio < 1.0 - threshold:
            improvements.append(entry)
    return regressions, improvements, compared


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when shared benchmarks regress vs a baseline"
    )
    parser.add_argument("baseline", help="previous build's bench JSON")
    parser.add_argument("current", help="this build's bench JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional slowdown that fails the gate (default 0.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="skip baselines faster than this (timer noise floor)",
    )
    args = parser.parse_args(argv)

    baseline = load_tests(args.baseline)
    if baseline is None:
        print("compare_bench: no usable baseline; skipping the gate")
        return 0
    current = load_tests(args.current)
    if current is None:
        print("compare_bench: current artifact unreadable; failing")
        return 2

    regressions, improvements, compared = compare(
        baseline, current, args.threshold, args.min_seconds
    )
    print(
        f"compare_bench: {compared} shared benchmarks compared "
        f"(threshold {args.threshold:.0%}, floor {args.min_seconds}s)"
    )
    for nodeid, before, after, ratio in improvements:
        print(f"  faster  {ratio:5.2f}x  {before:7.3f}s -> {after:7.3f}s  {nodeid}")
    for nodeid, before, after, ratio in regressions:
        print(f"  SLOWER  {ratio:5.2f}x  {before:7.3f}s -> {after:7.3f}s  {nodeid}")
    if regressions:
        print(
            f"compare_bench: {len(regressions)} benchmark(s) regressed "
            f"more than {args.threshold:.0%}"
        )
        return 1
    print("compare_bench: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
