"""Streaming-engine benchmarks: the PR 6 tentpole acceptance numbers.

The streaming path exists for memory, not speed: it runs the same
kernels chunk by chunk while carrying recurrence state, so its cost per
sample should track the monolithic path with a bounded state-carry
overhead.  These benchmarks pin that contract:

* the chunked fine-delay stream completes within **2.5x** the
  monolithic wall-clock on the numpy backend (the state carry,
  per-chunk noise draws and plan rebuilds are the only extras);
* the chunked NRZ source renders within **3x** of the one-shot
  ``synthesize_nrz`` (it re-renders one Gaussian guard band per chunk).

Both also publish absolute timings to the ``--bench-json`` artifact so
``compare_bench.py`` gates build-over-build regressions.
"""

import time

import pytest

from repro import kernels
from repro.core import FineDelayLine
from repro.signals import NRZStreamSource, prbs_sequence, synthesize_nrz
from repro.signals.waveform import Waveform

BACKENDS = kernels.available_backends()


def _best_of(fn, repeats: int = 7) -> float:
    """Smallest wall-clock of *repeats* calls (CI-noise-resistant)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def prbs9_stimulus():
    """An edge-dense record: PRBS9 at 4 Gbps, 16 samples per bit."""
    return synthesize_nrz(prbs_sequence(9, 511), 4e9, 1.0 / (4e9 * 16))


def _chunks(waveform, size):
    n = len(waveform)
    return [
        Waveform(
            waveform.values[a : a + size],
            waveform.dt,
            waveform.t0 + waveform.dt * a,
        )
        for a in range(0, n, size)
    ]


@pytest.fixture(params=BACKENDS)
def backend(request):
    with kernels.use_backend(request.param) as name:
        yield name


def test_perf_streamed_cascade(benchmark, backend, prbs9_stimulus):
    """Track the absolute cost of a chunked 4-stage stream per backend."""
    line = FineDelayLine(n_stages=4, seed=42)
    chunks = _chunks(prbs9_stimulus, 1024)
    benchmark.extra_info["kernel_backend"] = backend

    def run():
        processor = line.open_stream()
        return [processor.push(c) for c in chunks]

    outs = benchmark(run)
    assert sum(len(o) for o in outs) == len(prbs9_stimulus)


def test_perf_streaming_overhead_numpy(prbs9_stimulus):
    """The tentpole bound: chunked <= 2.5x monolithic wall-clock."""
    with kernels.use_backend("numpy"):
        chunks = _chunks(prbs9_stimulus, 1024)
        line = FineDelayLine(n_stages=4, seed=42)

        def monolithic():
            line.process(prbs9_stimulus)

        def streamed():
            processor = line.open_stream()
            for chunk in chunks:
                processor.push(chunk)

        monolithic()
        streamed()
        mono_time = _best_of(monolithic)
        stream_time = _best_of(streamed)
    overhead = stream_time / mono_time
    print(
        f"\nstream 4-stage x{len(chunks)} chunks: monolithic "
        f"{mono_time * 1e3:.1f} ms, streamed {stream_time * 1e3:.1f} ms, "
        f"{overhead:.2f}x"
    )
    assert overhead <= 2.5, (
        f"streamed cascade costs {overhead:.2f}x the monolithic path "
        f"({stream_time * 1e3:.1f} ms vs {mono_time * 1e3:.1f} ms)"
    )


def test_perf_nrz_stream_source_overhead():
    """Chunked NRZ synthesis <= 3x the one-shot renderer (guard-band
    re-rendering is the only duplicated work)."""
    bits = prbs_sequence(9, 511)
    dt = 1.0 / (4e9 * 16)

    def monolithic():
        synthesize_nrz(bits, 4e9, dt)

    def streamed():
        for _ in NRZStreamSource(bits, 4e9, dt, chunk_samples=1024):
            pass

    monolithic()
    streamed()
    mono_time = _best_of(monolithic)
    stream_time = _best_of(streamed)
    overhead = stream_time / mono_time
    print(
        f"\nNRZ source: one-shot {mono_time * 1e3:.2f} ms, chunked "
        f"{stream_time * 1e3:.2f} ms, {overhead:.2f}x"
    )
    assert overhead <= 3.0, (
        f"chunked NRZ synthesis costs {overhead:.2f}x the one-shot path"
    )
