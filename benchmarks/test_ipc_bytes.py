"""IPC-bytes benchmark: the shared-memory transport acceptance number.

The worker pools return results to the parent through a pickle pipe.
``repro.parallel.encode_payload`` rewrites waveform samples into
shared-memory tokens before the pickle, so the bytes that actually
cross the pipe shrink to metadata.

Acceptance bar: **>= 10x** fewer serialised bytes per campaign-style
point for a payload that carries its waveforms, measured apples to
apples with :func:`repro.parallel.payload_nbytes` (the pickle the pool
would have shipped).
"""

import numpy as np
import pytest

from repro import parallel
from repro.core import calibration_stimulus
from repro.signals.waveform import WaveformBatch


@pytest.mark.skipif(not parallel.SHM_AVAILABLE, reason="no shared memory")
def test_perf_ipc_bytes_per_point():
    """A realistic waveform-carrying point result, naive vs encoded."""
    stimulus = calibration_stimulus(n_bits=127, dt=1e-12)
    rng = np.random.default_rng(0)
    batch = WaveformBatch(
        np.stack([stimulus.values] * 8), stimulus.dt, rng.normal(0, 1e-10, 8)
    )
    point_result = {
        "metrics": {"total_range_s": 1.31e-10, "added_jitter_s": 3.2e-12},
        "stimulus": stimulus,
        "acquisition": batch,
        "edge_offsets": rng.normal(0, 1e-12, 40_000),
    }
    naive = parallel.payload_nbytes(point_result)
    encoded_payload = parallel.encode_payload(point_result)
    encoded = parallel.payload_nbytes(encoded_payload)
    # Clean up the parked blocks (the benchmark never ships them).
    parallel.decode_payload(encoded_payload)
    ratio = naive / encoded
    print(
        f"\nIPC bytes/point: naive {naive / 1e6:.2f} MB, "
        f"encoded {encoded / 1e3:.2f} kB, {ratio:.0f}x smaller"
    )
    assert ratio >= 10.0, (
        f"encoded payload only {ratio:.1f}x smaller "
        f"({encoded} vs {naive} bytes)"
    )


def test_perf_metrics_only_payload_passthrough():
    """Metrics-only payloads (what campaigns actually return) must not
    regress: encoding is a no-op walk, no shared memory involved."""
    metrics = {
        "total_range_s": 1.31e-10,
        "fine_range_s": 5.9e-11,
        "variation": {"slew_rate": 1.02, "bandwidth": 0.97},
    }
    encoded = parallel.encode_payload(metrics)
    assert encoded == metrics
    assert parallel.payload_nbytes(encoded) == parallel.payload_nbytes(metrics)
