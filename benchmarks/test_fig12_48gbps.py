"""Benchmark: Fig. 12 — 4.8 Gbps fine range and total jitter."""


def test_fig12_48gbps(figure_bench):
    figure_bench("fig12")
