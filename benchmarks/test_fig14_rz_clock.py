"""Benchmark: Fig. 14 — 6.4 GHz clock range and jitter."""


def test_fig14_rz_clock(figure_bench):
    figure_bench("fig14")
