"""Benchmark: Fig. 7 — 4-stage delay vs control voltage."""


def test_fig07_delay_vs_vctrl(figure_bench):
    figure_bench("fig07")
