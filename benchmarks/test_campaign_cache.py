"""Benchmarks of the campaign engine's cache and scheduling behaviour.

Two claims are measured:

* a fully cached re-run is orders of magnitude faster than the cold
  run it replays (the content-addressed cache actually short-circuits
  the physics), and
* the warm run reproduces the cold run's report payload byte for byte
  (the cache returns results, not approximations).
"""

import time

import pytest

from repro.campaign import (
    CampaignSpec,
    build_report,
    run_campaign,
)
from repro.campaign.spec import canonical_json

SPEC = {
    "name": "bench-campaign",
    "scenario": "range",
    "seed": 77,
    "n_instances": 2,
    "base": {"n_bits": 48, "n_points": 5, "measure_jitter": False},
    "sweeps": [{"name": "bit_rate", "values": ["2.4 Gbps", "4.8 Gbps"]}],
}


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec.from_dict(SPEC)


def test_perf_campaign_cold_run(benchmark, spec, tmp_path_factory):
    """Cold campaign: every point computed, cache filled."""
    cache_dir = tmp_path_factory.mktemp("cold-cache")
    result = benchmark.pedantic(
        lambda: run_campaign(spec, jobs=1, cache_dir=cache_dir / "c"),
        rounds=1,
        iterations=1,
    )
    # Only the first (benchmarked) call is cold; that one computed all.
    assert result.computed + result.cached == spec.n_points()


def test_perf_campaign_warm_cache_speedup(spec, tmp_path):
    """A warm re-run must be >= 20x faster and byte-identical."""
    cache_dir = tmp_path / "cache"
    t0 = time.perf_counter()
    cold = run_campaign(spec, jobs=1, cache_dir=cache_dir)
    cold_time = time.perf_counter() - t0
    assert cold.computed == spec.n_points()

    t0 = time.perf_counter()
    warm = run_campaign(spec, jobs=1, cache_dir=cache_dir)
    warm_time = time.perf_counter() - t0
    assert warm.computed == 0
    assert warm.cache_stats["hits"] == spec.n_points()

    speedup = cold_time / warm_time
    print(
        f"\ncampaign {spec.n_points()} points: cold {cold_time:.2f} s, "
        f"warm {warm_time * 1e3:.1f} ms, {speedup:.0f}x"
    )
    assert speedup >= 20.0, (
        f"warm cache run only {speedup:.1f}x faster "
        f"({warm_time:.3f} s vs {cold_time:.3f} s)"
    )
    assert canonical_json(build_report(cold)["payload"]) == canonical_json(
        build_report(warm)["payload"]
    ), "warm report payload diverged from the cold run"


def test_perf_campaign_parallel_matches_sequential(spec):
    """--jobs must change wall time only, never the metrics."""
    sequential = run_campaign(spec, jobs=1)
    parallel = run_campaign(spec, jobs=2)
    assert canonical_json(sequential.metrics) == canonical_json(
        parallel.metrics
    )
