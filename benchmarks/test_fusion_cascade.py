"""Fused-cascade benchmarks: the PR 5 tentpole acceptance numbers.

The fused ``fine_delay_cascade`` kernel runs the whole N-stage buffer
chain in one call, eliminating the per-stage Waveform round-trips,
filter-state solves, duplicate percentile passes and kernel dispatch of
the per-stage path — and, on the numpy backend, choosing per stage
between the event-walk and Jacobi-relaxation slew limiters by a cost
model instead of always walking.

Acceptance bar: **>= 2x** for the fused 4-stage cascade vs the
per-stage path on the numpy backend, on an edge-dense record (a PRBS9
pattern at scope-grade sampling — the regime campaigns actually run).
"""

import time

import numpy as np
import pytest

from repro import kernels
from repro.core import FineDelayLine
from repro.kernels.cascade import use_fusion
from repro.signals import prbs_sequence, synthesize_nrz

BACKENDS = kernels.available_backends()


def _best_of(fn, repeats: int = 7) -> float:
    """Smallest wall-clock of *repeats* calls (CI-noise-resistant)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def prbs9_stimulus():
    """An edge-dense record: PRBS9 at 4 Gbps, 16 samples per bit."""
    return synthesize_nrz(prbs_sequence(9, 511), 4e9, 1.0 / (4e9 * 16))


@pytest.fixture(params=BACKENDS)
def backend(request):
    with kernels.use_backend(request.param) as name:
        yield name


def test_perf_fused_cascade(benchmark, backend, prbs9_stimulus):
    """Track the fused 4-stage cascade's absolute cost per backend."""
    line = FineDelayLine(n_stages=4, seed=42)
    benchmark.extra_info["kernel_backend"] = backend

    def run():
        with use_fusion(True):
            return line.process(prbs9_stimulus, np.random.default_rng(1))

    out = benchmark(run)
    assert len(out) == len(prbs9_stimulus)


def test_perf_fused_cascade_speedup_numpy(prbs9_stimulus):
    """The tentpole acceptance: fused >= 2x per-stage on numpy."""
    with kernels.use_backend("numpy"):
        line = FineDelayLine(n_stages=4, seed=42)

        def fused():
            with use_fusion(True):
                line.process(prbs9_stimulus, np.random.default_rng(1))

        def unfused():
            with use_fusion(False):
                line.process(prbs9_stimulus, np.random.default_rng(1))

        fused()
        unfused()
        fused_time = _best_of(fused)
        unfused_time = _best_of(unfused)
    speedup = unfused_time / fused_time
    print(
        f"\ncascade 4-stage: per-stage {unfused_time * 1e3:.1f} ms, "
        f"fused {fused_time * 1e3:.1f} ms, {speedup:.2f}x"
    )
    assert speedup >= 2.0, (
        f"fused cascade only {speedup:.2f}x faster than the per-stage "
        f"path ({fused_time * 1e3:.1f} ms vs {unfused_time * 1e3:.1f} ms)"
    )


def test_perf_fused_cascade_batch_speedup_numpy(prbs9_stimulus):
    """Fusion composes with the batch axis: a 4-lane batched cascade
    through the fused kernel vs the per-stage batched path."""
    from repro.signals.waveform import WaveformBatch

    values = np.stack([prbs9_stimulus.values] * 4)
    batch = WaveformBatch(values, prbs9_stimulus.dt, np.zeros(4))
    vctrls = np.array([0.2, 0.6, 1.0, 1.4])
    with kernels.use_backend("numpy"):
        line = FineDelayLine(n_stages=4, seed=42)

        def rngs():
            return [np.random.default_rng(i) for i in range(4)]

        def fused():
            with use_fusion(True):
                line.process_batch(batch, rngs(), vctrls=vctrls)

        def unfused():
            with use_fusion(False):
                line.process_batch(batch, rngs(), vctrls=vctrls)

        fused()
        unfused()
        fused_time = _best_of(fused, repeats=5)
        unfused_time = _best_of(unfused, repeats=5)
    speedup = unfused_time / fused_time
    print(
        f"\ncascade 4-stage x4 lanes: per-stage {unfused_time * 1e3:.1f} ms, "
        f"fused {fused_time * 1e3:.1f} ms, {speedup:.2f}x"
    )
    # The batched per-stage path already amortises dispatch and array
    # passes across lanes, so fusion's win here is the Waveform churn
    # and filter-state solves only (~1.1x measured).  The bar is
    # no-regression, with headroom for timer noise on a busy CI box.
    assert speedup >= 0.9, (
        f"fused batched cascade regressed: {speedup:.2f}x"
    )
