"""Benchmark: application A — 8-channel bus deskew vs ATE-only."""


def test_app_deskew_bus(figure_bench):
    figure_bench("app_deskew")
