"""Benchmark: Fig. 17 — injected jitter vs noise amplitude."""


def test_fig17_jitter_vs_noise(figure_bench):
    figure_bench("fig17")
