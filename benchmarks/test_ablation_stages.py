"""Benchmark: ablation — range and added jitter vs stage count."""


def test_ablation_stage_count(figure_bench):
    figure_bench("ablation_stages")
